// Reproduces Table VII: varying the embedding algorithm on the CEA lookup
// protocol (top-1 success — stricter than the paper's top-10 because our
// scaled-down KG saturates top-10), with and without query errors. Candidates:
// EmbLookup's trained encoder, pre-trained word2vec, pre-trained fastText,
// MiniBERT (MLM pre-trained transformer) and a triplet-trained char-LSTM.
//
// Expected shape: EmbLookup best overall; word2vec collapses under errors
// (word-level OOV); fastText degrades mildly; BERT in between; LSTM close
// to EmbLookup but behind.

#include <cstdio>
#include <fstream>
#include <functional>
#include <vector>

#include "ann/flat_index.h"
#include "bench/bench_common.h"
#include "common/rng.h"
#include "core/trainer.h"
#include "core/triplets.h"
#include "embed/corpus.h"
#include "embed/lstm_encoder.h"
#include "embed/minibert.h"
#include "embed/word2vec.h"
#include "kg/noise.h"
#include "tensor/serialize.h"

using namespace emblookup;

namespace {

using EncodeFn = std::function<std::vector<float>(const std::string&)>;

struct EvalResult {
  double f_clean;
  double f_error;
};

/// Builds a flat index over entity-label embeddings and measures top-10
/// hit-rate for clean and perturbed queries.
EvalResult EvalEncoder(const kg::KnowledgeGraph& graph, int64_t dim,
                       const EncodeFn& encode) {
  ann::FlatIndex index(dim);
  for (kg::EntityId e = 0; e < graph.num_entities(); ++e) {
    const std::vector<float> v = encode(graph.entity(e).label);
    index.Add(v.data(), 1);
  }
  auto run = [&](bool noisy) {
    Rng rng(noisy ? 71 : 72);
    int64_t hits = 0, total = 0;
    for (kg::EntityId e = 0; e < graph.num_entities(); e += 3) {
      std::string q = graph.entity(e).label;
      if (noisy) q = kg::RandomNoise(q, &rng);
      const std::vector<float> v = encode(q);
      for (const ann::Neighbor& n : index.Search(v.data(), 1)) {
        if (n.id == e) {
          ++hits;
          break;
        }
      }
      ++total;
    }
    return static_cast<double>(hits) / static_cast<double>(total);
  };
  return {run(false), run(true)};
}

}  // namespace

int main() {
  bench::PrintBanner("Table VII: varying the embedding generation algorithm");

  const kg::KnowledgeGraph& graph = bench::SweepKg();
  const embed::Corpus corpus = embed::BuildCorpus(graph, {});

  std::printf("%-12s %18s %15s\n", "Embedding", "F-score (no error)",
              "F-score (error)");
  std::printf("%.50s\n", "--------------------------------------------------");

  // EmbLookup (trained end-to-end; cached).
  {
    core::EmbLookupOptions options = bench::MainModelOptions();
    options.miner.triplets_per_entity = 20;
    options.trainer.epochs = 12;
    auto model = bench::GetModel(
        graph, "sweep_n" + std::to_string(graph.num_entities()), options);
    const EvalResult r =
        EvalEncoder(graph, model->encoder()->dim(), [&](const std::string& q) {
          return model->Embed(q);
        });
    std::printf("%-12s %18.2f %15.2f\n", "EmbLookup", r.f_clean, r.f_error);
  }

  // word2vec (pre-trained SGNS, word-level).
  {
    embed::Word2Vec w2v;
    w2v.Train(corpus);
    const EvalResult r =
        EvalEncoder(graph, w2v.dim(), [&](const std::string& q) {
          return w2v.EncodeMention(q);
        });
    std::printf("%-12s %18.2f %15.2f\n", "word2vec", r.f_clean, r.f_error);
  }

  // fastText (pre-trained subword SGNS).
  {
    core::EmbLookupOptions options;
    auto ft = bench::GetFastText(
        graph, "sweep_n" + std::to_string(graph.num_entities()), options);
    const EvalResult r =
        EvalEncoder(graph, ft->dim(), [&](const std::string& q) {
          return ft->EncodeMention(q);
        });
    std::printf("%-12s %18.2f %15.2f\n", "fastText", r.f_clean, r.f_error);
  }

  // MiniBERT (MLM pre-trained transformer, mean-pooled).
  {
    embed::MiniBert::Options options;
    options.max_sentences = static_cast<int64_t>(12000 * bench::Scale());
    embed::MiniBert bert(options);
    bert.Pretrain(corpus);
    const EvalResult r =
        EvalEncoder(graph, bert.dim(), [&](const std::string& q) {
          return bert.EncodeMention(q);
        });
    std::printf("%-12s %18.2f %15.2f\n", "BERT", r.f_clean, r.f_error);
  }

  // Char-LSTM (triplet-trained over labels and aliases). Sequential
  // unrolling makes the LSTM ~10x costlier per mention than the CNN, so it
  // gets a smaller training budget (documented in EXPERIMENTS.md).
  {
    embed::CharLstmEncoder::Options lstm_options;
    lstm_options.char_dim = 12;
    lstm_options.hidden = 48;
    lstm_options.max_len = 16;
    embed::CharLstmEncoder lstm(lstm_options);
    const std::string cache =
        bench::CacheDir() + "/sweep_lstm_n" +
        std::to_string(graph.num_entities()) + ".params";
    bool loaded = false;
    {
      std::ifstream in(cache, std::ios::binary);
      if (in) {
        std::vector<tensor::Tensor> params = lstm.Parameters();
        loaded = tensor::LoadParameters(&params, &in).ok();
      }
    }
    if (!loaded) {
      core::MinerConfig miner;
      miner.triplets_per_entity = 8;
      const auto triplets = core::MineTriplets(graph, miner);
      core::TrainerConfig trainer_config;
      trainer_config.epochs = 4;
      core::TripletTrainer trainer(trainer_config);
      auto stats = trainer.Train(&lstm, triplets);
      std::fprintf(stderr, "[bench] LSTM trained in %.1fs\n",
                   stats.ok() ? stats.value().wall_seconds : -1.0);
      std::ofstream out(cache, std::ios::binary);
      if (out) {
        const std::vector<tensor::Tensor> params = lstm.Parameters();
        (void)tensor::SaveParameters(params, &out);
      }
    }
    const EvalResult r =
        EvalEncoder(graph, lstm.dim(), [&](const std::string& q) {
          return lstm.Encode(q);
        });
    std::printf("%-12s %18.2f %15.2f\n", "LSTM", r.f_clean, r.f_error);
  }
  return 0;
}
