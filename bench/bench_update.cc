// Online-update benchmark: the src/update write path attached to the
// ST-Wikidata model. Measures (1) durable vs non-durable mutation
// throughput (fsync per WAL record on/off), (2) freshness latency — the
// time from AddEntity returning to the entity being observable in a
// lookup (the LSM delta makes this one lookup round trip, not an index
// rebuild), and (3) lookup tail latency while compaction rebuilds the
// main index, against a quiesced baseline.
//
// Acceptance bar (ISSUE/EXPERIMENTS): lookup p99 during compaction stays
// within 2x of steady state — compaction publishes RCU-style and must
// never stall the read path.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "common/rng.h"
#include "common/timing.h"
#include "update/updater.h"

using namespace emblookup;

namespace {

double PercentileOf(std::vector<double>* latencies, double p) {
  if (latencies->empty()) return 0.0;
  std::sort(latencies->begin(), latencies->end());
  const size_t idx = static_cast<size_t>(
      p * static_cast<double>(latencies->size() - 1));
  return (*latencies)[idx];
}

/// Zipfian label/alias query stream over the base entities (captured
/// before any mutation so reader threads never touch the growing graph).
std::vector<std::string> MakeQueryStream(const kg::KnowledgeGraph& graph,
                                         size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::string> queries;
  queries.reserve(n);
  const uint64_t num_entities = static_cast<uint64_t>(graph.num_entities());
  for (size_t i = 0; i < n; ++i) {
    const auto& entity =
        graph.entity(static_cast<kg::EntityId>(rng.Zipf(num_entities, 1.1)));
    if (!entity.aliases.empty() && rng.Bernoulli(0.3)) {
      queries.push_back(rng.Choice(entity.aliases));
    } else {
      queries.push_back(entity.label);
    }
  }
  return queries;
}

/// `seconds` of closed-loop lookups from `threads` readers; returns the
/// pooled per-lookup latencies (us).
std::vector<double> TimedLookups(core::EmbLookup* model,
                                 const std::vector<std::string>& queries,
                                 int threads, double seconds) {
  std::vector<std::vector<double>> latencies(threads);
  std::atomic<bool> done{false};
  std::vector<std::thread> readers;
  readers.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    readers.emplace_back([&, t] {
      size_t i = t;
      while (!done.load(std::memory_order_relaxed)) {
        Stopwatch sw;
        (void)model->Lookup(queries[i % queries.size()], 10);
        latencies[t].push_back(sw.ElapsedMicros());
        ++i;
      }
    });
  }
  Stopwatch wall;
  while (wall.ElapsedSeconds() < seconds) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  done.store(true);
  for (auto& r : readers) r.join();
  std::vector<double> all;
  for (auto& per_thread : latencies) {
    all.insert(all.end(), per_thread.begin(), per_thread.end());
  }
  return all;
}

/// AddEntity throughput against a fresh WAL; returns mutations/second.
double MutationThroughput(core::EmbLookup* model, kg::KnowledgeGraph* graph,
                          const std::string& wal_path, bool fsync, int n,
                          uint64_t seed) {
  std::remove(wal_path.c_str());
  update::UpdaterOptions options;
  options.wal_path = wal_path;
  options.fsync_wal = fsync;
  options.compact_delta_rows = 0;  // Explicit compaction only.
  options.compact_masked_rows = 0;
  auto up = update::IndexUpdater::Open(model, graph, options);
  if (!up.ok()) {
    std::printf("updater open failed: %s\n", up.status().ToString().c_str());
    return 0.0;
  }
  Rng rng(seed);
  Stopwatch sw;
  for (int i = 0; i < n; ++i) {
    char label[64];
    std::snprintf(label, sizeof(label), "bench entity %d %llu", i,
                  static_cast<unsigned long long>(rng.Uniform(1u << 30)));
    auto id = up.value()->AddEntity(label, "", {});
    if (!id.ok()) {
      std::printf("add failed: %s\n", id.status().ToString().c_str());
      return 0.0;
    }
  }
  const double seconds = sw.ElapsedSeconds();
  return static_cast<double>(n) / seconds;
}

}  // namespace

int main() {
  bench::PrintBanner(
      "Online updates: WAL mutation throughput, freshness latency, lookup "
      "p99 during compaction (ST-Wikidata model)");

  kg::KnowledgeGraph graph = bench::WikidataKg();
  auto model =
      bench::GetModel(graph, bench::WikidataTag(), bench::MainModelOptions());
  // Readers scale with the host: on a 1-core container extra reader
  // threads just measure scheduler contention, not the read path.
  const int readers =
      static_cast<int>(std::max(2u, std::thread::hardware_concurrency() / 2));
  const std::vector<std::string> queries = MakeQueryStream(graph, 4096, 99);
  const std::string wal_path = bench::CacheDir() + "/bench_update.wal";
  const int mutations = static_cast<int>(400 * bench::Scale());

  // 1) Mutation throughput, non-durable then durable. fsync dominates the
  // durable path; the gap is the price of the crash-recovery contract.
  const double qps_nofsync = MutationThroughput(
      model.get(), &graph, wal_path, /*fsync=*/false, mutations, 11);
  const double qps_fsync = MutationThroughput(
      model.get(), &graph, wal_path, /*fsync=*/true, mutations, 12);
  std::printf("mutation throughput (AddEntity): %8.0f/s no-fsync  "
              "%8.0f/s fsync  (%.1fx fsync cost)\n",
              qps_nofsync, qps_fsync,
              qps_fsync > 0 ? qps_nofsync / qps_fsync : 0.0);

  // 2) Freshness: AddEntity ack -> entity visible in a lookup. The delta
  // overlay makes the entity searchable the moment the call returns, so
  // this measures one encode + merged search, not a rebuild.
  {
    std::remove(wal_path.c_str());
    update::UpdaterOptions options;
    options.wal_path = wal_path;
    options.compact_delta_rows = 0;
    options.compact_masked_rows = 0;
    auto up = update::IndexUpdater::Open(model.get(), &graph, options);
    if (!up.ok()) {
      std::printf("updater open failed: %s\n",
                  up.status().ToString().c_str());
      return 1;
    }
    std::vector<double> fresh_us;
    for (int i = 0; i < 32; ++i) {
      char label[64];
      std::snprintf(label, sizeof(label), "freshness probe entity %d", i);
      Stopwatch sw;
      auto id = up.value()->AddEntity(label, "", {});
      if (!id.ok()) break;
      bool seen = false;
      while (!seen) {
        for (const auto& hit : model->Lookup(label, 3)) {
          if (hit.entity == id.value()) { seen = true; break; }
        }
      }
      fresh_us.push_back(sw.ElapsedMicros());
    }
    std::printf("freshness (ack -> searchable): p50 %6.0fus  p99 %6.0fus\n",
                PercentileOf(&fresh_us, 0.5), PercentileOf(&fresh_us, 0.99));
  }

  // 3) Lookup tail latency during compaction vs steady state. Readers run
  // closed-loop; a writer thread keeps feeding the delta and compacting,
  // so the window is dominated by rebuild+publish cycles. The bar is
  // against a CPU-burn control — one extra thread spinning — which holds
  // core oversubscription constant: on a 1-core host ANY background work
  // inflates the tail via the scheduler, and the design question is
  // whether compaction blocks readers beyond that (RCU says it must not).
  {
    std::vector<double> steady =
        TimedLookups(model.get(), queries, readers, 4.0);
    const double steady_p50 = PercentileOf(&steady, 0.5);
    const double steady_p99 = PercentileOf(&steady, 0.99);

    std::atomic<bool> stop_burn{false};
    std::thread burn([&] {
      volatile uint64_t x = 0;
      while (!stop_burn.load(std::memory_order_relaxed)) ++x;
    });
    std::vector<double> burned =
        TimedLookups(model.get(), queries, readers, 4.0);
    stop_burn.store(true);
    burn.join();
    const double burn_p99 = PercentileOf(&burned, 0.99);

    std::remove(wal_path.c_str());
    update::UpdaterOptions options;
    options.wal_path = wal_path;
    options.fsync_wal = false;
    options.compact_delta_rows = 0;
    options.compact_masked_rows = 0;
    auto up = update::IndexUpdater::Open(model.get(), &graph, options);
    if (!up.ok()) {
      std::printf("updater open failed: %s\n",
                  up.status().ToString().c_str());
      return 1;
    }
    std::atomic<bool> stop{false};
    std::atomic<uint64_t> compactions{0};
    std::thread churn([&] {
      int i = 0;
      while (!stop.load()) {
        char label[64];
        std::snprintf(label, sizeof(label), "churn entity %d", i++);
        if (!up.value()->AddEntity(label, "", {}).ok()) break;
        if (i % 16 == 0 && up.value()->Compact().ok()) {
          compactions.fetch_add(1);
        }
      }
    });
    std::vector<double> churned =
        TimedLookups(model.get(), queries, readers, 4.0);
    stop.store(true);
    churn.join();
    const double churn_p50 = PercentileOf(&churned, 0.5);
    const double churn_p99 = PercentileOf(&churned, 0.99);
    std::printf(
        "lookup latency:  steady p50 %6.0fus p99 %6.0fus  |  "
        "cpu-burn control p99 %6.0fus  |  "
        "under compaction (%llu rebuilds) p50 %6.0fus p99 %6.0fus\n"
        "p99 vs steady %.2fx, vs cpu-burn control %.2fx "
        "(bar: <= 2x of control)\n",
        steady_p50, steady_p99, burn_p99,
        static_cast<unsigned long long>(compactions.load()), churn_p50,
        churn_p99, steady_p99 > 0 ? churn_p99 / steady_p99 : 0.0,
        burn_p99 > 0 ? churn_p99 / burn_p99 : 0.0);
  }

  std::remove(wal_path.c_str());
  return 0;
}
