// Reproduces Table III: same protocol as Table II on the ST-DBpedia-like
// dataset, showing the gains are not specific to one knowledge graph.

#include "bench/bench_common.h"
#include "bench/system_bench.h"
#include "common/rng.h"
#include "kg/tabular.h"

using namespace emblookup;

int main() {
  bench::PrintBanner(
      "Table III: accelerating lookups of various systems (ST-DBPedia)");

  const kg::KnowledgeGraph& graph = bench::DbpediaKg();
  Rng rng(4048);
  const kg::TabularDataset dataset = kg::GenerateDataset(
      graph, kg::DatasetProfile::StDbpediaLike(bench::Scale()), &rng);

  auto model =
      bench::GetModel(graph, bench::DbpediaTag(), bench::MainModelOptions());
  const auto runs =
      bench::RunSystemSuite(graph, dataset, model.get(), /*run_nc=*/true);
  bench::PrintSpeedupTable(runs);
  return 0;
}
