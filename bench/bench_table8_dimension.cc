// Reproduces Table VIII: varying the embedding dimension (32..256) with an
// uncompressed flat index (no PQ confound). Success = gold entity at rank 1
// (top-10 saturates at our scaled-down KG size). Expected shape: 32 clearly
// worse; diminishing returns from 64 to 256.

#include <cstdio>

#include "bench/bench_common.h"
#include "common/rng.h"
#include "core/emblookup.h"
#include "kg/noise.h"

using namespace emblookup;

int main() {
  bench::PrintBanner("Table VIII: varying the embedding dimension");

  const kg::KnowledgeGraph& graph = bench::SweepKg();
  std::printf("%-14s %18s %15s\n", "Dimension", "F-score (no error)",
              "F-score (error)");
  std::printf("%.50s\n", "--------------------------------------------------");

  for (int64_t dim : {32, 64, 128, 256}) {
    core::EmbLookupOptions options = bench::MainModelOptions();
    options.miner.triplets_per_entity = 20;
    options.trainer.epochs = 12;
    options.encoder.embedding_dim = dim;
    options.encoder.fusion_hidden = std::max<int64_t>(64, dim);
    options.index.compress = false;  // Flat index isolates the dimension.
    auto model = bench::GetModel(
        graph,
        "sweep_dim" + std::to_string(dim) + "_n" +
            std::to_string(graph.num_entities()),
        options);

    auto run = [&](bool noisy) {
      Rng rng(noisy ? 81 : 82);
      int64_t hits = 0, total = 0;
      for (kg::EntityId e = 0; e < graph.num_entities(); e += 3) {
        std::string q = graph.entity(e).label;
        if (noisy) q = kg::RandomNoise(q, &rng);
        for (const core::LookupResult& r : model->Lookup(q, 1)) {
          if (r.entity == e) {
            ++hits;
            break;
          }
        }
        ++total;
      }
      return static_cast<double>(hits) / static_cast<double>(total);
    };
    std::printf("%-14s %18.2f %15.2f\n",
                (std::to_string(dim) + (dim == 64 ? " (default)" : ""))
                    .c_str(),
                run(false), run(true));
  }
  return 0;
}
