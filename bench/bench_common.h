#ifndef EMBLOOKUP_BENCH_BENCH_COMMON_H_
#define EMBLOOKUP_BENCH_BENCH_COMMON_H_

#include <memory>
#include <string>

#include "core/emblookup.h"
#include "embed/fasttext.h"
#include "kg/knowledge_graph.h"
#include "kg/tabular.h"

namespace emblookup::bench {

/// Workload scale multiplier (env EMBLOOKUP_BENCH_SCALE, default 1.0).
/// 1.0 keeps the full suite in CPU-minutes; raise it to approach the
/// paper's raw sizes.
double Scale();

/// Directory for cached trained artifacts (env EMBLOOKUP_CACHE_DIR,
/// default "emblookup_bench_cache" under the current directory). Created on
/// demand. Delete it to force retraining.
std::string CacheDir();

/// The two knowledge graphs backing the experiments (lazily built, cached
/// per process). Sizes scale with Scale().
const kg::KnowledgeGraph& WikidataKg();
const kg::KnowledgeGraph& DbpediaKg();
/// Smaller graph for training sweeps (Tables VII/VIII, Fig. 3).
const kg::KnowledgeGraph& SweepKg();

/// Baseline EmbLookup options used by the main-table models.
core::EmbLookupOptions MainModelOptions();

/// Pre-trains (or loads from cache) the fastText semantic branch for a KG.
std::shared_ptr<embed::FastTextModel> GetFastText(
    const kg::KnowledgeGraph& graph, const std::string& tag,
    const core::EmbLookupOptions& options);

/// Trains (or loads from cache) an EmbLookup model. `tag` keys the cache
/// and must encode every option that affects training.
std::shared_ptr<core::EmbLookup> GetModel(const kg::KnowledgeGraph& graph,
                                          const std::string& tag,
                                          core::EmbLookupOptions options);

/// Tags for the two main models.
std::string WikidataTag();
std::string DbpediaTag();

/// Speedup ratio guarded against div-by-zero.
double Speedup(double baseline_seconds, double el_seconds);

/// Prints a banner line for a table/figure reproduction.
void PrintBanner(const std::string& title);

}  // namespace emblookup::bench

#endif  // EMBLOOKUP_BENCH_BENCH_COMMON_H_
