// Reproduces Table VI: semantic lookup. Every annotated cell is replaced
// with a uniformly random alias of its gold entity (several perturbed
// variants, averaged). Originals run with their *local syntactic* indices
// (the §IV-D deployment: aliases are not in the index), so they collapse;
// EmbLookup encodes alias similarity in f(·) and stays high.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "bench/system_bench.h"
#include "common/rng.h"
#include "kg/noise.h"
#include "kg/tabular.h"

using namespace emblookup;

namespace {

constexpr int kNumVariants = 3;  // Paper uses 5; 3 keeps the suite fast.

struct Avg {
  double orig = 0.0, el = 0.0;
};

std::vector<Avg> RunVariants(const kg::KnowledgeGraph& graph,
                             const kg::TabularDataset& base,
                             core::EmbLookup* model) {
  std::vector<Avg> avg;
  for (int v = 0; v < kNumVariants; ++v) {
    kg::TabularDataset dataset = base;
    Rng rng(1000 + v);
    kg::SubstituteAliases(&dataset, graph, &rng);
    const auto runs = bench::RunSystemSuite(
        graph, dataset, model, /*run_nc=*/false,
        bench::OriginalDeployment::kLocalSyntactic);
    if (avg.empty()) avg.resize(runs.size());
    for (size_t i = 0; i < runs.size(); ++i) {
      avg[i].orig += runs[i].original.metrics.F1() / kNumVariants;
      avg[i].el += runs[i].el_cpu.metrics.F1() / kNumVariants;
    }
  }
  return avg;
}

void PrintBlock(const char* label, const std::vector<Avg>& avg) {
  static const char* kRows[] = {"CEA/bbw",  "CEA/MantisTable", "CEA/JenTab",
                                "CTA/bbw",  "CTA/MantisTable", "CTA/JenTab",
                                "EA/DoSeR", "DR/Katara"};
  std::printf("[%s] (avg over %d alias-substituted variants)\n", label,
              kNumVariants);
  std::printf("%-18s | %10s %11s\n", "Task/System", "F-Original",
              "F-EmbLookup");
  std::printf("%.45s\n", "---------------------------------------------");
  for (size_t i = 0; i < avg.size(); ++i) {
    std::printf("%-18s | %10.2f %11.2f\n", kRows[i], avg[i].orig, avg[i].el);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  bench::PrintBanner("Table VI: semantic lookup (alias-substituted queries)");

  {
    const kg::KnowledgeGraph& graph = bench::WikidataKg();
    Rng rng(2024);
    const kg::TabularDataset base = kg::GenerateDataset(
        graph, kg::DatasetProfile::StWikidataLike(bench::Scale()), &rng);
    auto model = bench::GetModel(graph, bench::WikidataTag(),
                                 bench::MainModelOptions());
    PrintBlock("ST-Wikidata", RunVariants(graph, base, model.get()));
  }
  {
    const kg::KnowledgeGraph& graph = bench::DbpediaKg();
    Rng rng(4048);
    const kg::TabularDataset base = kg::GenerateDataset(
        graph, kg::DatasetProfile::StDbpediaLike(bench::Scale()), &rng);
    auto model = bench::GetModel(graph, bench::DbpediaTag(),
                                 bench::MainModelOptions());
    PrintBlock("ST-DBPedia", RunVariants(graph, base, model.get()));
  }
  return 0;
}
