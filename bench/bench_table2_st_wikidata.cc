// Reproduces Table II: EmbLookup accelerating five systems on the
// ST-Wikidata-like dataset (no noise). Columns: speedup of EL / EL-NC over
// each system's original lookup (CPU and thread-pool-parallel — the GPU
// stand-in) and the F-scores of original / EL / EL-NC.
//
// Expected shape: >= 1 order of magnitude speedup, F-EL within ~0.03 of
// F-original, F-NC within ~0.01.

#include "bench/bench_common.h"
#include "bench/system_bench.h"
#include "common/rng.h"
#include "kg/tabular.h"

using namespace emblookup;

int main() {
  bench::PrintBanner(
      "Table II: accelerating lookups of various systems (ST-Wikidata)");

  const kg::KnowledgeGraph& graph = bench::WikidataKg();
  Rng rng(2024);
  const kg::TabularDataset dataset = kg::GenerateDataset(
      graph, kg::DatasetProfile::StWikidataLike(bench::Scale()), &rng);

  auto model =
      bench::GetModel(graph, bench::WikidataTag(), bench::MainModelOptions());
  const auto runs =
      bench::RunSystemSuite(graph, dataset, model.get(), /*run_nc=*/true);
  bench::PrintSpeedupTable(runs);
  return 0;
}
