#include "bench/system_bench.h"

#include <cstdio>
#include <functional>
#include <memory>

#include "apps/lookup_services.h"
#include "apps/systems.h"
#include "apps/tasks.h"
#include "common/logging.h"
#include "common/rng.h"
#include "kg/noise.h"

namespace emblookup::bench {

namespace {

using apps::AnnotationSystem;
using apps::LookupService;
using apps::TaskResult;

std::unique_ptr<LookupService> MakeLocalSyntactic(
    const std::string& system, const kg::KnowledgeGraph& graph) {
  // The §IV-D deployment: labels-only local indices, no alias awareness.
  if (system == "bbw") {
    return std::make_unique<apps::QGramService>(&graph);
  }
  if (system == "MantisTable") {
    return std::make_unique<apps::ElasticSearchService>(
        &graph, /*index_aliases=*/false);
  }
  if (system == "JenTab") {
    return std::make_unique<apps::LevenshteinService>(&graph);
  }
  if (system == "DoSeR") {
    return std::make_unique<apps::FuzzyWuzzyService>(&graph);
  }
  // Katara.
  return std::make_unique<apps::ElasticSearchService>(
      &graph, /*index_aliases=*/false);
}

std::unique_ptr<LookupService> MakeShipped(const std::string& system,
                                           const kg::KnowledgeGraph& graph) {
  if (system == "DoSeR") {
    // DoSeR ships a local surface-form index (alias-aware).
    return std::make_unique<apps::ElasticSearchService>(
        &graph, /*index_aliases=*/true);
  }
  if (system == "Katara") {
    // Katara validates patterns against a remote KB endpoint.
    return std::make_unique<apps::WikidataApiService>(&graph);
  }
  apps::SystemConfig config;
  config.name = system;
  return apps::MakeOriginalLookup(config, graph);
}

}  // namespace

std::vector<SystemRun> RunSystemSuite(const kg::KnowledgeGraph& graph,
                                      const kg::TabularDataset& dataset,
                                      core::EmbLookup* model, bool run_nc,
                                      OriginalDeployment deployment) {
  auto make_original = [&](const std::string& system) {
    return deployment == OriginalDeployment::kShipped
               ? MakeShipped(system, graph)
               : MakeLocalSyntactic(system, graph);
  };

  // The 8 rows: each entry knows how to run its task given a service.
  struct RowSpec {
    std::string task;
    std::string system;
    std::function<TaskResult(LookupService*)> run;
  };
  std::vector<RowSpec> specs;
  for (const auto& make_config :
       {apps::BbwConfig, apps::MantisTableConfig, apps::JenTabConfig}) {
    const apps::SystemConfig config = make_config();
    specs.push_back({"CEA", config.name, [&, config](LookupService* s) {
                       AnnotationSystem system(config, &graph, s);
                       return system.RunCea(dataset);
                     }});
  }
  for (const auto& make_config :
       {apps::BbwConfig, apps::MantisTableConfig, apps::JenTabConfig}) {
    const apps::SystemConfig config = make_config();
    specs.push_back({"CTA", config.name, [&, config](LookupService* s) {
                       AnnotationSystem system(config, &graph, s);
                       return system.RunCta(dataset);
                     }});
  }
  specs.push_back({"EA", "DoSeR", [&](LookupService* s) {
                     return apps::RunEntityDisambiguation(dataset, graph, s);
                   }});
  // DR imputes missing values: blank 10% of the annotated cells (§IV).
  auto blanked = std::make_shared<kg::TabularDataset>(dataset);
  {
    Rng rng(1337);
    kg::BlankCells(blanked.get(), 0.10, &rng);
  }
  specs.push_back({"DR", "Katara", [&, blanked](LookupService* s) {
                     return apps::RunDataRepair(*blanked, graph, s);
                   }});

  std::vector<SystemRun> runs(specs.size());

  // Pass 1: originals + EL (compressed).
  for (size_t i = 0; i < specs.size(); ++i) {
    runs[i].task = specs[i].task;
    runs[i].system = specs[i].system;
    auto original = make_original(specs[i].system);
    runs[i].original = specs[i].run(original.get());
    apps::EmbLookupService el_cpu(model, /*parallel=*/false);
    runs[i].el_cpu = specs[i].run(&el_cpu);
    apps::EmbLookupService el_par(model, /*parallel=*/true);
    runs[i].el_parallel = specs[i].run(&el_par);
  }

  // Pass 2: EL-NC (flat index), then restore compression.
  if (run_nc) {
    core::IndexConfig nc;
    nc.compress = false;
    EL_CHECK(model->RebuildIndex(nc).ok());
    for (size_t i = 0; i < specs.size(); ++i) {
      apps::EmbLookupService nc_cpu(model, /*parallel=*/false);
      runs[i].nc_cpu = specs[i].run(&nc_cpu);
      apps::EmbLookupService nc_par(model, /*parallel=*/true);
      runs[i].nc_parallel = specs[i].run(&nc_par);
    }
    core::IndexConfig compressed;
    compressed.compress = true;
    EL_CHECK(model->RebuildIndex(compressed).ok());
  }
  return runs;
}

void PrintSpeedupTable(const std::vector<SystemRun>& runs) {
  std::printf("%-4s %-12s | %9s %9s | %9s %9s | %6s %6s %6s\n", "Task",
              "System", "EL(cpu)", "NC(cpu)", "EL(par)", "NC(par)", "F-orig",
              "F-EL", "F-NC");
  std::printf("%.95s\n",
              "-----------------------------------------------------------"
              "------------------------------------");
  for (const SystemRun& r : runs) {
    std::printf("%-4s %-12s | %8.1fx %8.1fx | %8.1fx %8.1fx | %6.2f %6.2f "
                "%6.2f\n",
                r.task.c_str(), r.system.c_str(),
                Speedup(r.original.lookup_seconds, r.el_cpu.lookup_seconds),
                Speedup(r.original.lookup_seconds, r.nc_cpu.lookup_seconds),
                Speedup(r.original.lookup_seconds,
                        r.el_parallel.lookup_seconds),
                Speedup(r.original.lookup_seconds,
                        r.nc_parallel.lookup_seconds),
                r.original.metrics.F1(), r.el_cpu.metrics.F1(),
                r.nc_cpu.metrics.F1());
  }
}

void PrintFScoreTable(const std::string& label,
                      const std::vector<SystemRun>& runs) {
  std::printf("[%s]\n", label.c_str());
  std::printf("%-4s %-12s | %10s %10s\n", "Task", "System", "F-Original",
              "F-EmbLookup");
  std::printf("%.50s\n",
              "--------------------------------------------------");
  for (const SystemRun& r : runs) {
    std::printf("%-4s %-12s | %10.2f %10.2f\n", r.task.c_str(),
                r.system.c_str(), r.original.metrics.F1(),
                r.el_cpu.metrics.F1());
  }
  std::printf("\n");
}

}  // namespace emblookup::bench
