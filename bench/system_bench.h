#ifndef EMBLOOKUP_BENCH_SYSTEM_BENCH_H_
#define EMBLOOKUP_BENCH_SYSTEM_BENCH_H_

#include <string>
#include <vector>

#include "apps/evaluation.h"
#include "bench/bench_common.h"
#include "core/emblookup.h"
#include "kg/knowledge_graph.h"
#include "kg/tabular.h"

namespace emblookup::bench {

/// One row of a Table II/III/IV/VI-style experiment: a (task, system) pair
/// run with its original lookup service and with EmbLookup variants.
struct SystemRun {
  std::string task;    ///< "CEA", "CTA", "EA", "DR".
  std::string system;  ///< "bbw", "MantisTable", "JenTab", "DoSeR", "Katara".
  apps::TaskResult original;
  apps::TaskResult el_cpu;       ///< EL (compressed), sequential bulk.
  apps::TaskResult el_parallel;  ///< EL (compressed), thread-pool bulk.
  apps::TaskResult nc_cpu;       ///< EL-NC (flat index), sequential.
  apps::TaskResult nc_parallel;  ///< EL-NC, thread-pool bulk.
};

/// Which original lookup deployment the suite should instrument.
enum class OriginalDeployment {
  /// The services the systems shipped with (remote simulators + ES), used
  /// for the speedup studies (Tables II/III): alias-aware but slow.
  kShipped,
  /// Local syntactic indices only (ES / q-gram / Levenshtein), the §IV-D
  /// setting where aliases are not in the index (Table VI).
  kLocalSyntactic,
};

/// Runs the full 8-row suite (CEA/CTA x 3 systems, EA/DoSeR, DR/Katara)
/// over `dataset`. The model's index is rebuilt (NC then compressed again)
/// when `run_nc` is set.
std::vector<SystemRun> RunSystemSuite(const kg::KnowledgeGraph& graph,
                                      const kg::TabularDataset& dataset,
                                      core::EmbLookup* model, bool run_nc,
                                      OriginalDeployment deployment =
                                          OriginalDeployment::kShipped);

/// Prints a Table II/III-style block: speedups (CPU & parallel, EL & EL-NC)
/// plus the three F-score columns.
void PrintSpeedupTable(const std::vector<SystemRun>& runs);

/// Prints a Table IV/VI-style block: Original-F vs EmbLookup-F per row.
/// `label` names the dataset column group.
void PrintFScoreTable(const std::string& label,
                      const std::vector<SystemRun>& runs);

}  // namespace emblookup::bench

#endif  // EMBLOOKUP_BENCH_SYSTEM_BENCH_H_
