// Serving-subsystem benchmark: closed-loop clients driving LookupServer
// over the ST-Wikidata model, comparing the naive one-Lookup-per-request
// loop against {batch=1, micro-batch} x {no cache, cache} server
// configurations, then an online index swap under sustained load.
//
// Expected shape: micro-batching alone beats the naive loop (batched
// encoder matmuls amortize per-query overhead; on multi-core hosts the
// parallel bulk path adds further speedup), and the query cache multiplies
// throughput on the Zipfian stream. SwapIndex completes with zero failed
// lookups.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "common/rng.h"
#include "common/timing.h"
#include "serve/lookup_server.h"

using namespace emblookup;

namespace {

/// Zipfian closed-loop query stream: popular entities dominate, queries
/// repeat verbatim (labels/aliases), so cacheability mirrors production
/// lookup traffic rather than a uniform scan.
std::vector<std::string> MakeQueryStream(const kg::KnowledgeGraph& graph,
                                         size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::string> queries;
  queries.reserve(n);
  const uint64_t num_entities =
      static_cast<uint64_t>(graph.num_entities());
  for (size_t i = 0; i < n; ++i) {
    const auto& entity =
        graph.entity(static_cast<kg::EntityId>(rng.Zipf(num_entities, 1.1)));
    if (!entity.aliases.empty() && rng.Bernoulli(0.3)) {
      queries.push_back(rng.Choice(entity.aliases));
    } else {
      queries.push_back(entity.label);
    }
  }
  return queries;
}

double PercentileOf(std::vector<double>* latencies, double p) {
  if (latencies->empty()) return 0.0;
  std::sort(latencies->begin(), latencies->end());
  const size_t idx = static_cast<size_t>(
      p * static_cast<double>(latencies->size() - 1));
  return (*latencies)[idx];
}

struct RunResult {
  double wall_seconds = 0.0;
  double qps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double hit_rate = 0.0;
};

/// Runs `clients` closed-loop threads over disjoint slices of `queries`
/// against `issue(query) -> ok`; returns throughput + client-side latency.
template <typename IssueFn>
RunResult RunClosedLoop(const std::vector<std::string>& queries,
                        int clients, const IssueFn& issue) {
  std::vector<std::vector<double>> latencies(clients);
  std::atomic<uint64_t> failures{0};
  Stopwatch wall;
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      latencies[c].reserve(queries.size() / clients + 1);
      for (size_t i = c; i < queries.size(); i += clients) {
        Stopwatch sw;
        if (!issue(queries[i])) failures.fetch_add(1);
        latencies[c].push_back(sw.ElapsedMicros());
      }
    });
  }
  for (auto& t : threads) t.join();
  RunResult result;
  result.wall_seconds = wall.ElapsedSeconds();
  result.qps = static_cast<double>(queries.size()) / result.wall_seconds;
  std::vector<double> all;
  for (auto& per_client : latencies) {
    all.insert(all.end(), per_client.begin(), per_client.end());
  }
  result.p50_us = PercentileOf(&all, 0.5);
  result.p99_us = PercentileOf(&all, 0.99);
  if (failures.load() != 0) {
    std::printf("  WARNING: %llu failed lookups\n",
                static_cast<unsigned long long>(failures.load()));
  }
  return result;
}

void PrintRow(const char* config, const RunResult& r) {
  std::printf("  %-28s %8.0f qps  wall %6.2fs  p50 %8.0fus  p99 %8.0fus",
              config, r.qps, r.wall_seconds, r.p50_us, r.p99_us);
  if (r.hit_rate > 0.0) std::printf("  hit-rate %.2f", r.hit_rate);
  std::printf("\n");
}

serve::ServerOptions MakeOptions(bool micro_batch, bool cache) {
  serve::ServerOptions options;
  options.max_batch = micro_batch ? 64 : 1;
  // Adaptive (continuous) batching: flush whatever accumulated while the
  // previous batch executed. A positive max_delay only pays off for open
  // -loop traffic; closed-loop clients would just absorb it as latency.
  options.max_delay = std::chrono::microseconds(0);
  options.enable_cache = cache;
  options.parallel_backend = micro_batch;
  return options;
}

}  // namespace

int main() {
  bench::PrintBanner(
      "Serving subsystem: micro-batching + query cache vs naive loop "
      "(ST-Wikidata model, Zipfian stream, top-10)");

  const kg::KnowledgeGraph& graph = bench::WikidataKg();
  auto model =
      bench::GetModel(graph, bench::WikidataTag(), bench::MainModelOptions());
  const size_t num_queries = static_cast<size_t>(4000 * bench::Scale());
  const int clients = 8;
  const int64_t k = 10;
  const std::vector<std::string> queries =
      MakeQueryStream(graph, num_queries, 4242);
  std::printf("%zu queries, %d closed-loop clients, k=%lld\n\n",
              queries.size(), clients, static_cast<long long>(k));

  // Baseline: one direct Lookup per request, no serving layer.
  const RunResult naive =
      RunClosedLoop(queries, clients, [&](const std::string& q) {
        return !model->Lookup(q, k).empty();
      });
  PrintRow("naive per-request loop", naive);

  RunResult best;
  for (const bool micro_batch : {false, true}) {
    for (const bool cache : {false, true}) {
      serve::LookupServer server(model.get(),
                                 MakeOptions(micro_batch, cache));
      const RunResult run =
          RunClosedLoop(queries, clients, [&](const std::string& q) {
            auto result = server.LookupSync(q, k);
            return result.ok() && !result.value().ids.empty();
          });
      char label[64];
      std::snprintf(label, sizeof(label), "server %s%s",
                    micro_batch ? "micro-batch" : "batch=1",
                    cache ? " + cache" : "");
      RunResult annotated = run;
      annotated.hit_rate = server.Metrics().CacheHitRate();
      PrintRow(label, annotated);
      if (micro_batch && cache) best = run;
    }
  }
  std::printf("\nmicro-batch+cache vs naive: %.2fx throughput\n",
              best.qps / naive.qps);

  // Tracing overhead sweep (OBSERVABILITY.md): micro-batch+cache with head
  // sampling at 0% / 1% / 100%. The 0%-row is the acceptance gate — spans
  // are compiled in on every hot path, so its p50 must sit within noise of
  // the untraced run above.
  std::printf("\ntracing overhead (micro-batch + cache):\n");
  for (const double rate : {0.0, 0.01, 1.0}) {
    serve::ServerOptions options = MakeOptions(true, true);
    options.obs.trace_sample_rate = rate;
    serve::LookupServer server(model.get(), options);
    const RunResult run =
        RunClosedLoop(queries, clients, [&](const std::string& q) {
          auto result = server.LookupSync(q, k);
          return result.ok() && !result.value().ids.empty();
        });
    char label[64];
    std::snprintf(label, sizeof(label), "trace-sample %.2f", rate);
    PrintRow(label, run);
    std::printf("  %-28s p50 %+5.1f%%  qps %+5.1f%% vs untraced\n", "",
                100.0 * (run.p50_us - best.p50_us) / best.p50_us,
                100.0 * (run.qps - best.qps) / best.qps);
  }

  // Online index swap under sustained load: zero failures required.
  {
    serve::LookupServer server(model.get(), MakeOptions(true, true));
    std::atomic<uint64_t> failures{0};
    std::atomic<bool> done{false};
    std::thread client([&] {
      size_t i = 0;
      while (!done.load()) {
        auto result = server.LookupSync(queries[i % queries.size()], k);
        if (!result.ok() || result.value().ids.empty()) failures.fetch_add(1);
        ++i;
      }
    });
    Stopwatch sw;
    int swaps = 0;
    for (const auto kind :
         {core::IndexKind::kIvfFlat, core::IndexKind::kFlat,
          core::IndexKind::kIvfFlat}) {
      core::IndexConfig config;
      config.compress = false;
      config.kind = kind;
      config.ivf_lists = 32;
      config.ivf_nprobe = 32;
      const Status status = server.SwapIndex(config);
      if (!status.ok()) {
        std::printf("swap failed: %s\n", status.ToString().c_str());
        break;
      }
      ++swaps;
    }
    done.store(true);
    client.join();
    std::printf(
        "swap under load: %d online swaps in %.2fs, %llu failed lookups\n",
        swaps, sw.ElapsedSeconds(),
        static_cast<unsigned long long>(failures.load()));
  }

  // Cold start: rebuilding the serving index from the KG (re-embed every
  // entity + PQ training) vs mmap-loading a snapshot (src/store). Results
  // must be bit-identical; acceptance bar is >= 10x.
  {
    core::IndexConfig config;
    config.kind = core::IndexKind::kPq;

    Stopwatch rebuild_watch;
    Status status = model->RebuildIndex(config);
    const double rebuild_s = rebuild_watch.ElapsedSeconds();
    if (!status.ok()) {
      std::printf("rebuild failed: %s\n", status.ToString().c_str());
      return 1;
    }

    const std::string snap_path = bench::CacheDir() + "/coldstart.snap";
    status = model->SaveSnapshot(snap_path);
    if (!status.ok()) {
      std::printf("snapshot save failed: %s\n", status.ToString().c_str());
      return 1;
    }

    std::vector<std::vector<core::LookupResult>> before;
    for (size_t i = 0; i < 64 && i < queries.size(); ++i) {
      before.push_back(model->Lookup(queries[i], k));
    }

    Stopwatch load_watch;
    status = model->LoadIndexSnapshot(snap_path);
    const double load_s = load_watch.ElapsedSeconds();
    if (!status.ok()) {
      std::printf("snapshot load failed: %s\n", status.ToString().c_str());
      return 1;
    }

    size_t mismatches = 0;
    for (size_t i = 0; i < before.size(); ++i) {
      const auto after = model->Lookup(queries[i], k);
      if (after.size() != before[i].size()) {
        ++mismatches;
        continue;
      }
      for (size_t j = 0; j < after.size(); ++j) {
        if (after[j].entity != before[i][j].entity ||
            after[j].dist != before[i][j].dist) {
          ++mismatches;
          break;
        }
      }
    }

    std::printf(
        "\ncold start (PQ index, %lld rows): rebuild-from-KG %.3fs, "
        "snapshot mmap load %.4fs -> %.0fx faster, "
        "%zu/%zu mismatched lookups (want 0)\n",
        static_cast<long long>(model->index().size()), rebuild_s, load_s,
        rebuild_s / load_s, mismatches, before.size());
    std::remove(snap_path.c_str());
  }

  std::printf("\nfinal server metrics are available via "
              "tools/emblookup_cli serve --help\n");
  return 0;
}
