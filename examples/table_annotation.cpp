// Semantic table annotation (CEA + CTA) with EmbLookup as the lookup
// service inside a SemTab-style pipeline — the paper's headline scenario.
//
//   $ ./examples/table_annotation
//
// Builds a synthetic KG and a SemTab-like benchmark, trains EmbLookup,
// plugs it into the three annotation systems (bbw / MantisTable / JenTab),
// and compares F-score and lookup time against each system's original
// lookup service.

#include <cstdio>

#include "apps/lookup_services.h"
#include "apps/systems.h"
#include "common/rng.h"
#include "core/emblookup.h"
#include "kg/synthetic_kg.h"
#include "kg/tabular.h"

using namespace emblookup;

int main() {
  // Knowledge graph + benchmark tables with gold annotations.
  kg::SyntheticKgOptions kg_options;
  kg_options.num_entities = 1500;
  kg_options.seed = 7;
  const kg::KnowledgeGraph graph = kg::GenerateSyntheticKg(kg_options);
  Rng rng(11);
  const kg::TabularDataset dataset = kg::GenerateDataset(
      graph, kg::DatasetProfile::StWikidataLike(0.4), &rng);
  std::printf("dataset: %lld tables, %lld annotated cells\n",
              static_cast<long long>(dataset.NumTables()),
              static_cast<long long>(dataset.NumAnnotatedCells()));

  // Train EmbLookup.
  core::EmbLookupOptions options;
  options.miner.triplets_per_entity = 16;
  options.trainer.epochs = 10;
  auto el = core::EmbLookup::TrainFromKg(graph, options).ValueOrDie();
  std::printf("EmbLookup trained in %.1fs\n\n",
              el->train_stats().wall_seconds);
  apps::EmbLookupService el_service(el.get(), /*parallel=*/false);

  std::printf("%-12s | %18s | %18s\n", "system", "original (F / s)",
              "EmbLookup (F / s)");
  std::printf("%.60s\n",
              "------------------------------------------------------------");
  for (const auto& make_config :
       {apps::BbwConfig, apps::MantisTableConfig, apps::JenTabConfig}) {
    const apps::SystemConfig config = make_config();
    auto original = apps::MakeOriginalLookup(config, graph);

    apps::AnnotationSystem with_original(config, &graph, original.get());
    const apps::TaskResult orig = with_original.RunCea(dataset);

    apps::AnnotationSystem with_el(config, &graph, &el_service);
    const apps::TaskResult ours = with_el.RunCea(dataset);

    std::printf("%-12s |     %.3f / %6.2fs |     %.3f / %6.2fs  (%.0fx)\n",
                config.name.c_str(), orig.metrics.F1(), orig.lookup_seconds,
                ours.metrics.F1(), ours.lookup_seconds,
                orig.lookup_seconds / ours.lookup_seconds);
  }
  return 0;
}
