// Entity disambiguation (DoSeR-style): ambiguous mentions are resolved
// collectively — candidates come from EmbLookup, and row coherence (shared
// KG facts) breaks ties that lexical similarity cannot.
//
//   $ ./examples/entity_disambiguation

#include <cstdio>

#include "apps/lookup_services.h"
#include "apps/tasks.h"
#include "common/rng.h"
#include "core/emblookup.h"
#include "kg/synthetic_kg.h"
#include "kg/tabular.h"

using namespace emblookup;

int main() {
  // Raise the ambiguity rate so many labels map to several entities —
  // the BERLIN problem from the paper's introduction.
  kg::SyntheticKgOptions kg_options;
  kg_options.num_entities = 1200;
  kg_options.seed = 17;
  kg_options.ambiguity_rate = 0.15;
  const kg::KnowledgeGraph graph = kg::GenerateSyntheticKg(kg_options);

  int64_t ambiguous = 0;
  for (kg::EntityId e = 0; e < graph.num_entities(); ++e) {
    if (graph.EntitiesByMention(graph.entity(e).label).size() > 1) {
      ++ambiguous;
    }
  }
  std::printf("KG: %lld entities, %lld with ambiguous labels\n",
              static_cast<long long>(graph.num_entities()),
              static_cast<long long>(ambiguous));

  Rng rng(19);
  const kg::TabularDataset dataset = kg::GenerateDataset(
      graph, kg::DatasetProfile::StWikidataLike(0.3), &rng);

  core::EmbLookupOptions options;
  options.miner.triplets_per_entity = 14;
  options.trainer.epochs = 10;
  // Alias-expanded index (§III-C): ambiguous mentions now retrieve every
  // entity sharing the string, so disambiguation has real work to do.
  options.index.index_aliases = true;
  auto el = core::EmbLookup::TrainFromKg(graph, options).ValueOrDie();
  apps::EmbLookupService service(el.get(), /*parallel=*/false);

  // Collective disambiguation vs plain CEA (no coherence).
  const apps::TaskResult collective =
      apps::RunEntityDisambiguation(dataset, graph, &service);
  const apps::TaskResult plain = apps::RunCea(dataset, graph, &service);
  std::printf("plain nearest-lexical CEA : F1=%.3f\n", plain.metrics.F1());
  std::printf("collective disambiguation : F1=%.3f\n",
              collective.metrics.F1());
  std::printf("(coherence with row neighbors resolves mentions that "
              "lexical matching alone cannot)\n");
  return 0;
}
