// Quickstart: build a small synthetic knowledge graph, train EmbLookup on
// it, and run a few syntactic and semantic lookups.
//
//   $ ./examples/quickstart
//
// This walks the full §III pipeline: corpus -> fastText pre-training ->
// triplet mining -> two-phase triplet training -> PQ-compressed entity
// index -> lookup(q, k).

#include <cstdio>

#include "core/emblookup.h"
#include "kg/synthetic_kg.h"

using emblookup::core::EmbLookup;
using emblookup::core::EmbLookupOptions;
using emblookup::core::LookupResult;
using emblookup::kg::GenerateSyntheticKg;
using emblookup::kg::KnowledgeGraph;
using emblookup::kg::SyntheticKgOptions;

namespace {

void ShowLookup(const EmbLookup& el, const KnowledgeGraph& graph,
                const std::string& query, int64_t k) {
  std::printf("lookup(%-28s k=%zd):\n", ("\"" + query + "\",").c_str(),
              static_cast<size_t>(k));
  for (const LookupResult& hit : el.Lookup(query, k)) {
    const auto& e = graph.entity(hit.entity);
    std::printf("  %-8s %-30s dist=%.4f\n", e.qid.c_str(), e.label.c_str(),
                hit.dist);
  }
}

}  // namespace

int main() {
  // 1) A small synthetic KG (stand-in for a Wikidata slice; see DESIGN.md).
  SyntheticKgOptions kg_options;
  kg_options.num_entities = 2000;
  kg_options.seed = 42;
  const KnowledgeGraph graph = GenerateSyntheticKg(kg_options);
  std::printf("KG: %lld entities, %lld types, %lld facts\n",
              static_cast<long long>(graph.num_entities()),
              static_cast<long long>(graph.num_types()),
              static_cast<long long>(graph.num_facts()));

  // 2) Train EmbLookup end-to-end (small config for a fast demo).
  EmbLookupOptions options;
  options.miner.triplets_per_entity = 20;
  options.trainer.epochs = 12;
  options.trainer.log_every = 2;
  auto built = EmbLookup::TrainFromKg(graph, options);
  if (!built.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 built.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<EmbLookup> el = std::move(built).value();
  std::printf("trained in %.1fs (final loss %.4f); index: %lld vectors, "
              "%lld bytes (%s)\n",
              el->train_stats().wall_seconds, el->train_stats().final_loss,
              static_cast<long long>(el->index().size()),
              static_cast<long long>(el->index().StorageBytes()),
              el->index().compressed() ? "PQ-compressed" : "flat");

  // 3) Lookups: clean, misspelled, and alias (semantic) queries.
  const auto& e0 = graph.entity(0);
  ShowLookup(*el, graph, e0.label, 3);
  if (e0.label.size() > 3) {
    std::string typo = e0.label;
    typo.erase(typo.size() / 2, 1);  // Drop a middle character.
    ShowLookup(*el, graph, typo, 3);
  }
  if (!e0.aliases.empty()) {
    ShowLookup(*el, graph, e0.aliases[0], 3);  // Semantic lookup.
  }
  return 0;
}
