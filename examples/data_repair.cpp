// Data repair (Katara-style): impute missing table cells by resolving the
// observable cells with EmbLookup, discovering each column's KG relation,
// and reading the missing value off the knowledge graph.
//
//   $ ./examples/data_repair

#include <cstdio>

#include "apps/lookup_services.h"
#include "apps/tasks.h"
#include "common/rng.h"
#include "core/emblookup.h"
#include "kg/noise.h"
#include "kg/synthetic_kg.h"
#include "kg/tabular.h"

using namespace emblookup;

int main() {
  kg::SyntheticKgOptions kg_options;
  kg_options.num_entities = 1200;
  kg_options.seed = 9;
  const kg::KnowledgeGraph graph = kg::GenerateSyntheticKg(kg_options);

  Rng rng(13);
  kg::TabularDataset dataset = kg::GenerateDataset(
      graph, kg::DatasetProfile::StWikidataLike(0.3), &rng);
  Rng blank_rng(14);
  const int64_t blanked = kg::BlankCells(&dataset, 0.10, &blank_rng);
  std::printf("blanked %lld of %lld annotated cells\n",
              static_cast<long long>(blanked),
              static_cast<long long>(dataset.NumAnnotatedCells()));

  core::EmbLookupOptions options;
  options.miner.triplets_per_entity = 14;
  options.trainer.epochs = 10;
  auto el = core::EmbLookup::TrainFromKg(graph, options).ValueOrDie();
  apps::EmbLookupService service(el.get(), /*parallel=*/false);

  const apps::TaskResult result =
      apps::RunDataRepair(dataset, graph, &service);
  std::printf("repair: precision=%.3f recall=%.3f F1=%.3f "
              "(%lld lookups in %.2fs)\n",
              result.metrics.Precision(), result.metrics.Recall(),
              result.metrics.F1(),
              static_cast<long long>(result.num_lookups),
              result.lookup_seconds);

  // Show a few concrete repairs: blanked cell -> gold label.
  std::printf("\nexamples of cells the repairer had to fill:\n");
  int shown = 0;
  for (const kg::Table& table : dataset.tables) {
    for (const auto& row : table.rows) {
      if (row[0].text.empty()) continue;  // Subject itself blanked.
      for (size_t c = 1; c < row.size() && shown < 5; ++c) {
        if (row[c].text.empty() && row[c].gt_entity != kg::kInvalidEntity) {
          std::printf("  table %-22s subject '%s' -> missing cell was '%s'\n",
                      table.name.c_str(), row[0].text.c_str(),
                      graph.entity(row[c].gt_entity).label.c_str());
          ++shown;
        }
      }
    }
    if (shown >= 5) break;
  }
  return 0;
}
