// Tests for the src/cluster sharded-serving subsystem: shard map
// build/save/load and corruption rejection, cluster wire frames, the
// scatter-gather router (merged results bit-identical to a single node,
// explicit partial answers when a shard dies, health ejection + ping
// reinstatement, hedged reads), and WAL-shipped replication (follower
// convergence + lookup equivalence, seq-gap and torn-segment replay
// errors surfacing as Status — never UB; this suite runs under ASan).

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "ann/topk.h"
#include "apps/lookup_service.h"
#include "cluster/metrics.h"
#include "cluster/replication.h"
#include "cluster/router.h"
#include "cluster/shard_map.h"
#include "core/emblookup.h"
#include "kg/knowledge_graph.h"
#include "kg/synthetic_kg.h"
#include "net/client.h"
#include "net/server.h"
#include "net/wire.h"
#include "serve/lookup_server.h"
#include "update/updater.h"
#include "update/wal.h"

namespace emblookup::cluster {
namespace {

using std::chrono::milliseconds;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string FreshPath(const std::string& name) {
  const std::string path = TempPath(name);
  ::remove(path.c_str());
  return path;
}

const kg::KnowledgeGraph& BaseKg() {
  static const kg::KnowledgeGraph graph = [] {
    kg::SyntheticKgOptions options;
    options.num_entities = 140;
    options.seed = 33;
    return kg::GenerateSyntheticKg(options);
  }();
  return graph;
}

// --- Shard map ---------------------------------------------------------------

TEST(ShardMapTest, AssignShardIsDeterministicAndInRange) {
  for (int num_shards : {1, 2, 3, 8}) {
    for (kg::EntityId id = 0; id < 1000; ++id) {
      const int shard = AssignShard(id, num_shards);
      EXPECT_GE(shard, 0);
      EXPECT_LT(shard, num_shards);
      EXPECT_EQ(shard, AssignShard(id, num_shards)) << "unstable assignment";
    }
  }
}

TEST(ShardMapTest, PartitionIsDisjointAndExhaustive) {
  const kg::KnowledgeGraph& graph = BaseKg();
  const int num_shards = 4;
  auto map = BuildShardMap(graph, num_shards);
  ASSERT_TRUE(map.ok()) << map.status().ToString();
  ASSERT_EQ(map.value().shards.size(), static_cast<size_t>(num_shards));
  EXPECT_EQ(map.value().catalog_entities,
            static_cast<uint64_t>(graph.num_entities()));

  uint64_t total = 0;
  for (const ShardInfo& shard : map.value().shards) total += shard.entities;
  EXPECT_EQ(total, static_cast<uint64_t>(graph.num_entities()));

  // The exclude set of shard k is exactly the complement of its members,
  // and membership across shards covers every entity exactly once.
  std::vector<int> owner(graph.num_entities(), -1);
  for (int shard = 0; shard < num_shards; ++shard) {
    const std::unordered_set<kg::EntityId> exclude =
        ShardExclusions(graph, shard, num_shards);
    EXPECT_EQ(graph.num_entities() - static_cast<int64_t>(exclude.size()),
              static_cast<int64_t>(map.value().shards[shard].entities));
    for (kg::EntityId id = 0; id < graph.num_entities(); ++id) {
      if (exclude.count(id) == 0) {
        EXPECT_EQ(owner[static_cast<size_t>(id)], -1)
            << "entity " << id << " owned twice";
        owner[static_cast<size_t>(id)] = shard;
      }
    }
  }
  for (kg::EntityId id = 0; id < graph.num_entities(); ++id) {
    EXPECT_EQ(owner[static_cast<size_t>(id)], AssignShard(id, num_shards));
  }
}

TEST(ShardMapTest, SaveLoadRoundTrip) {
  auto map = BuildShardMap(BaseKg(), 3);
  ASSERT_TRUE(map.ok());
  const std::string path = FreshPath("shards_roundtrip.map");
  ASSERT_TRUE(SaveShardMap(map.value(), path).ok());
  auto loaded = LoadShardMap(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().num_shards, map.value().num_shards);
  EXPECT_EQ(loaded.value().catalog_entities, map.value().catalog_entities);
  ASSERT_EQ(loaded.value().shards.size(), map.value().shards.size());
  for (size_t i = 0; i < map.value().shards.size(); ++i) {
    EXPECT_EQ(loaded.value().shards[i].index, map.value().shards[i].index);
    EXPECT_EQ(loaded.value().shards[i].entities,
              map.value().shards[i].entities);
    EXPECT_EQ(loaded.value().shards[i].members_crc,
              map.value().shards[i].members_crc);
    EXPECT_EQ(loaded.value().shards[i].snapshot_file,
              map.value().shards[i].snapshot_file);
  }
}

TEST(ShardMapTest, LoadRejectsCorruption) {
  auto map = BuildShardMap(BaseKg(), 3);
  ASSERT_TRUE(map.ok());
  const std::string path = FreshPath("shards_corrupt.map");
  ASSERT_TRUE(SaveShardMap(map.value(), path).ok());

  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();

  // A flipped digit inside the body breaks the trailing checksum.
  const size_t digit = bytes.find("entities");
  ASSERT_NE(digit, std::string::npos);
  std::string tampered = bytes;
  tampered[digit] = 'X';
  const std::string tampered_path = FreshPath("shards_tampered.map");
  {
    std::ofstream out(tampered_path, std::ios::binary);
    out << tampered;
  }
  EXPECT_FALSE(LoadShardMap(tampered_path).ok());

  // Truncation (checksum line gone) must fail too.
  const std::string truncated_path = FreshPath("shards_truncated.map");
  {
    std::ofstream out(truncated_path, std::ios::binary);
    out << bytes.substr(0, bytes.rfind("checksum"));
  }
  EXPECT_FALSE(LoadShardMap(truncated_path).ok());

  EXPECT_FALSE(LoadShardMap(TempPath("shards_missing.map")).ok());
}

// --- Cluster wire frames -----------------------------------------------------

Result<net::Frame> DecodeWhole(const std::string& bytes) {
  net::Frame frame;
  EL_ASSIGN_OR_RETURN(
      const size_t consumed,
      net::DecodeFrame(reinterpret_cast<const uint8_t*>(bytes.data()),
                       bytes.size(), net::kDefaultMaxPayloadBytes, &frame));
  EXPECT_EQ(consumed, bytes.size());
  return frame;
}

TEST(ClusterWireTest, ShardLookupResponseRoundTrips) {
  std::string bytes;
  net::AppendShardLookupResponse(&bytes, 9, /*from_cache=*/false,
                                 /*partial=*/true, {42, 7, 3},
                                 {0.25f, 0.5f, 1.75f}, {1, 3});
  auto decoded = DecodeWhole(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  const net::Frame& frame = decoded.value();
  EXPECT_EQ(frame.type, net::FrameType::kShardLookupResponse);
  EXPECT_TRUE(frame.partial);
  EXPECT_EQ(frame.ids, (std::vector<int64_t>{42, 7, 3}));
  EXPECT_EQ(frame.dists, (std::vector<float>{0.25f, 0.5f, 1.75f}));
  EXPECT_EQ(frame.missing_shards, (std::vector<uint32_t>{1, 3}));
}

TEST(ClusterWireTest, WalSubscribeAndSegmentRoundTrip) {
  std::string subscribe;
  net::AppendWalSubscribe(&subscribe, 4, /*from_seq=*/17);
  auto sub = DecodeWhole(subscribe);
  ASSERT_TRUE(sub.ok());
  EXPECT_EQ(sub.value().type, net::FrameType::kWalSubscribe);
  EXPECT_EQ(sub.value().wal_from_seq, 17u);

  update::Mutation m;
  m.kind = update::MutationKind::kAddEntity;
  m.seq = 18;
  m.entity = 140;
  m.label = "wire segment probe";
  const std::vector<uint8_t> record = update::EncodeRecord(m);
  std::string segment;
  net::AppendWalSegment(
      &segment, 4, /*leader_seq=*/18, /*wall_us=*/123456, /*record_count=*/1,
      std::string(reinterpret_cast<const char*>(record.data()),
                  record.size()));
  auto seg = DecodeWhole(segment);
  ASSERT_TRUE(seg.ok()) << seg.status().ToString();
  EXPECT_EQ(seg.value().type, net::FrameType::kWalSegment);
  EXPECT_EQ(seg.value().leader_seq, 18u);
  EXPECT_EQ(seg.value().wall_us, 123456u);
  EXPECT_EQ(seg.value().wal_record_count, 1u);
  auto replayed = update::DecodeRecords(
      reinterpret_cast<const uint8_t*>(seg.value().wal_records.data()),
      seg.value().wal_records.size());
  ASSERT_TRUE(replayed.ok());
  ASSERT_EQ(replayed.value().records.size(), 1u);
  EXPECT_TRUE(replayed.value().records[0] == m);

  // A 0-record segment is a heartbeat: just the leader's seq + clock.
  std::string heartbeat;
  net::AppendWalSegment(&heartbeat, 5, 18, 123789, 0, "");
  auto beat = DecodeWhole(heartbeat);
  ASSERT_TRUE(beat.ok());
  EXPECT_EQ(beat.value().wal_record_count, 0u);
  EXPECT_TRUE(beat.value().wal_records.empty());
}

TEST(ClusterWireTest, ParseHostPortAcceptsGoodRejectsBad) {
  auto good = ParseHostPort("10.1.2.3:8080");
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value().first, "10.1.2.3");
  EXPECT_EQ(good.value().second, 8080);
  EXPECT_FALSE(ParseHostPort("no-port").ok());
  EXPECT_FALSE(ParseHostPort(":99").ok());
  EXPECT_FALSE(ParseHostPort("host:").ok());
  EXPECT_FALSE(ParseHostPort("host:notanumber").ok());
  EXPECT_FALSE(ParseHostPort("host:70000").ok());
}

// --- Router scatter-gather ---------------------------------------------------

/// A deterministic scored backend over a fixed entity universe, restricted
/// to one shard's members. Distances depend only on (query, id) — the
/// candidate-set-independence property the router's exactness rests on —
/// and are deliberately coarse (many exact ties) so the shared (dist, id)
/// tie-break is actually exercised by the merge.
class ShardedFakeService : public apps::LookupService {
 public:
  ShardedFakeService(int shard, int num_shards, int64_t universe = 512)
      : shard_(shard), num_shards_(num_shards), universe_(universe) {}

  std::string name() const override { return "sharded-fake"; }

  static float DistOf(const std::string& query, int64_t id) {
    uint64_t h = 1469598103934665603ull;
    for (char c : query) {
      h = (h ^ static_cast<unsigned char>(c)) * 1099511628211ull;
    }
    h = SplitMix64(h ^ static_cast<uint64_t>(id));
    return static_cast<float>(h % 97) / 97.0f;
  }

  std::vector<kg::EntityId> Lookup(const std::string& query,
                                   int64_t k) override {
    std::vector<kg::EntityId> ids;
    for (const apps::ScoredEntity& s : Scored(query, k)) {
      ids.push_back(s.id);
    }
    return ids;
  }

  std::vector<std::vector<apps::ScoredEntity>> BulkLookupScored(
      const std::vector<std::string>& queries, int64_t k) override {
    std::vector<std::vector<apps::ScoredEntity>> out;
    out.reserve(queries.size());
    for (const std::string& q : queries) out.push_back(Scored(q, k));
    return out;
  }

 private:
  std::vector<apps::ScoredEntity> Scored(const std::string& query,
                                         int64_t k) const {
    ann::TopK topk(k);
    for (int64_t id = 0; id < universe_; ++id) {
      if (num_shards_ > 1 &&
          AssignShard(static_cast<kg::EntityId>(id), num_shards_) != shard_) {
        continue;
      }
      topk.Push(id, DistOf(query, id));
    }
    std::vector<apps::ScoredEntity> scored;
    for (const ann::Neighbor& n : topk.Finish()) {
      scored.push_back({static_cast<kg::EntityId>(n.id), n.dist});
    }
    return scored;
  }

  const int shard_;
  const int num_shards_;
  const int64_t universe_;
};

/// One fake shard server: backend + dispatcher + socket front end.
struct FakeShard {
  FakeShard(int shard, int num_shards,
            serve::ServerOptions options = NoCacheOptions(), int port = 0)
      : backend(shard, num_shards), server(&backend, options) {
    EXPECT_TRUE(front.Start(&server, port).ok());
  }

  static serve::ServerOptions NoCacheOptions() {
    serve::ServerOptions options;
    options.enable_cache = false;
    return options;
  }

  int port() const { return front.port(); }

  ShardedFakeService backend;
  serve::LookupServer server;
  net::NetServer front;
};

std::vector<std::string> ShardAddrs(
    const std::vector<std::unique_ptr<FakeShard>>& shards) {
  std::vector<std::string> addrs;
  for (const auto& shard : shards) {
    addrs.push_back("127.0.0.1:" + std::to_string(shard->port()));
  }
  return addrs;
}

TEST(RouterTest, MergedResultsBitIdenticalToSingleNode) {
  const int kNumShards = 3;
  std::vector<std::unique_ptr<FakeShard>> shards;
  for (int s = 0; s < kNumShards; ++s) {
    shards.push_back(std::make_unique<FakeShard>(s, kNumShards));
  }
  RouterOptions options;
  options.shard_addrs = ShardAddrs(shards);
  Router router;
  ASSERT_TRUE(router.Start(options, 0).ok());

  // Reference: ONE backend over the whole universe (shard 0 of 1).
  ShardedFakeService single(0, 1);
  net::RemoteClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", router.port()).ok());
  for (int q = 0; q < 32; ++q) {
    const std::string query = "merge-query-" + std::to_string(q);
    const std::vector<apps::ScoredEntity> want =
        single.BulkLookupScored({query}, 10)[0];
    // Through the wire (scored protocol, dists included)...
    auto remote = client.LookupScored(query, 10);
    ASSERT_TRUE(remote.ok()) << remote.status().ToString();
    EXPECT_FALSE(remote.value().partial);
    ASSERT_EQ(remote.value().ids.size(), want.size()) << query;
    for (size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(remote.value().ids[i], want[i].id) << query << " rank " << i;
      EXPECT_EQ(remote.value().dists[i], want[i].dist)
          << query << " rank " << i;
    }
    // ...and the plain protocol returns the same merged ids.
    auto plain = client.Lookup(query, 10);
    ASSERT_TRUE(plain.ok());
    EXPECT_EQ(plain.value().ids, remote.value().ids) << query;
  }
  const RouterStatsSnapshot stats = router.Stats();
  EXPECT_EQ(stats.requests, 64u);
  EXPECT_EQ(stats.partial_responses, 0u);
  EXPECT_EQ(stats.shard_rpcs, 64u * kNumShards);
  EXPECT_EQ(stats.shard_rpc_failures, 0u);
}

TEST(RouterTest, KilledShardYieldsExplicitPartialWithMissingList) {
  const int kNumShards = 3;
  std::vector<std::unique_ptr<FakeShard>> shards;
  for (int s = 0; s < kNumShards; ++s) {
    shards.push_back(std::make_unique<FakeShard>(s, kNumShards));
  }
  RouterOptions options;
  options.shard_addrs = ShardAddrs(shards);
  options.shard_timeout_us = 200000;
  // Keep the dead shard in the fan-out for the whole test.
  options.eject_after_failures = 1000;
  Router router;
  ASSERT_TRUE(router.Start(options, 0).ok());

  shards[1].reset();  // Kill shard 1: connection drops, reconnects refused.

  net::RemoteClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", router.port()).ok());
  auto degraded = client.LookupScored("partial-query", 10);
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  EXPECT_TRUE(degraded.value().partial);
  EXPECT_EQ(degraded.value().missing_shards, (std::vector<uint32_t>{1}));

  // The survivors' merge: everything the reference answer holds except
  // shard 1's entities.
  ShardedFakeService single(0, 1);
  ann::TopK expect(10);
  const std::vector<apps::ScoredEntity> reference =
      single.BulkLookupScored({"partial-query"}, 512)[0];
  for (const apps::ScoredEntity& s : reference) {
    if (AssignShard(s.id, kNumShards) == 1) continue;
    expect.Push(s.id, s.dist);
  }
  std::vector<int64_t> want_ids;
  for (const ann::Neighbor& n : expect.Finish()) want_ids.push_back(n.id);
  EXPECT_EQ(degraded.value().ids, want_ids);

  const RouterStatsSnapshot stats = router.Stats();
  EXPECT_EQ(stats.partial_responses, 1u);
  EXPECT_GT(stats.shard_rpc_failures, 0u);

  // All shards down -> an explicit Unavailable error, not an empty answer.
  shards[0].reset();
  shards[2].reset();
  auto dark = client.LookupScored("partial-query-2", 10);
  ASSERT_FALSE(dark.ok());
  EXPECT_EQ(dark.status().code(), StatusCode::kUnavailable);
}

TEST(RouterTest, EjectionAndPingReinstatement) {
  const int kNumShards = 2;
  std::vector<std::unique_ptr<FakeShard>> shards;
  for (int s = 0; s < kNumShards; ++s) {
    shards.push_back(std::make_unique<FakeShard>(s, kNumShards));
  }
  const int shard1_port = shards[1]->port();
  RouterOptions options;
  options.shard_addrs = ShardAddrs(shards);
  options.shard_timeout_us = 100000;
  options.retries = 0;
  options.eject_after_failures = 2;
  options.probe_interval_ms = 20;
  Router router;
  ASSERT_TRUE(router.Start(options, 0).ok());

  shards[1].reset();
  for (int i = 0; i < 3; ++i) {
    auto result = router.Route("eject-query-" + std::to_string(i), 5);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result.value().partial);
  }
  RouterStatsSnapshot stats = router.Stats();
  EXPECT_GE(stats.ejections, 1u);
  EXPECT_EQ(stats.shards_ejected, 1);

  // An ejected shard is skipped, not retried inline: answers stay partial
  // but no new failures accumulate.
  const uint64_t failures_at_ejection = stats.shard_rpc_failures;
  auto skipped = router.Route("skipped-query", 5);
  ASSERT_TRUE(skipped.ok());
  EXPECT_TRUE(skipped.value().partial);
  EXPECT_EQ(router.Stats().shard_rpc_failures, failures_at_ejection);

  // Resurrect shard 1 on its old port; the ping reprobe brings it back.
  shards[1] = std::make_unique<FakeShard>(1, kNumShards,
                                          FakeShard::NoCacheOptions(),
                                          shard1_port);
  ASSERT_EQ(shards[1]->port(), shard1_port);
  const auto deadline = std::chrono::steady_clock::now() + milliseconds(5000);
  while (router.Stats().shards_ejected != 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(milliseconds(10));
  }
  stats = router.Stats();
  EXPECT_EQ(stats.shards_ejected, 0);
  EXPECT_GE(stats.reinstatements, 1u);
  auto healed = router.Route("healed-query", 5);
  ASSERT_TRUE(healed.ok());
  EXPECT_FALSE(healed.value().partial);
}

TEST(RouterTest, HedgedReadDuplicatesSlowRpcAndStaysCorrect) {
  const int kNumShards = 2;
  std::vector<std::unique_ptr<FakeShard>> shards;
  shards.push_back(std::make_unique<FakeShard>(0, kNumShards));
  // Shard 1 dispatches slowly: a huge micro-batch window holds replies
  // ~40ms, long past the hedge delay but well inside the RPC budget.
  serve::ServerOptions slow;
  slow.enable_cache = false;
  slow.max_batch = 1000;
  slow.max_delay = std::chrono::microseconds(40000);
  shards.push_back(std::make_unique<FakeShard>(1, kNumShards, slow));

  RouterOptions options;
  options.shard_addrs = ShardAddrs(shards);
  options.shard_timeout_us = 2000000;
  options.hedge_delay_us = 2000;
  Router router;
  ASSERT_TRUE(router.Start(options, 0).ok());

  ShardedFakeService single(0, 1);
  for (int q = 0; q < 3; ++q) {
    const std::string query = "hedged-query-" + std::to_string(q);
    auto result = router.Route(query, 10);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_FALSE(result.value().partial);
    const std::vector<apps::ScoredEntity> want =
        single.BulkLookupScored({query}, 10)[0];
    ASSERT_EQ(result.value().ids.size(), want.size());
    for (size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(result.value().ids[i], want[i].id) << query << " rank " << i;
    }
  }
  EXPECT_GE(router.Stats().hedged_rpcs, 1u);
  EXPECT_EQ(router.Stats().shard_rpc_failures, 0u);
}

// --- Replication -------------------------------------------------------------

core::EmbLookupOptions FastOptions() {
  core::EmbLookupOptions options;
  options.encoder.use_semantic_branch = false;
  options.miner.triplets_per_entity = 6;
  options.trainer.epochs = 4;
  options.index.kind = core::IndexKind::kFlat;
  options.index.compress = false;
  return options;
}

/// Encoder weights trained once and shared by every replication test.
const std::string& ModelPath() {
  static const std::string path = [] {
    const std::string p = TempPath("cluster_test_model.bin");
    auto built = core::EmbLookup::TrainFromKg(BaseKg(), FastOptions());
    EXPECT_TRUE(built.ok()) << built.status().ToString();
    EXPECT_TRUE(built.value()->SaveModel(p).ok());
    return p;
  }();
  return path;
}

/// One replication node: its own catalog copy, EmbLookup, WAL and updater.
struct Node {
  explicit Node(const std::string& wal_name) : graph(BaseKg()) {
    auto loaded = core::EmbLookup::LoadFromKg(graph, FastOptions(),
                                              ModelPath());
    EXPECT_TRUE(loaded.ok()) << loaded.status().ToString();
    el = std::move(loaded).value();
    update::UpdaterOptions options;
    options.wal_path = FreshPath(wal_name);
    auto opened = update::IndexUpdater::Open(el.get(), &graph, options);
    EXPECT_TRUE(opened.ok()) << opened.status().ToString();
    updater = std::move(opened).value();
  }

  kg::KnowledgeGraph graph;
  std::unique_ptr<core::EmbLookup> el;
  std::unique_ptr<update::IndexUpdater> updater;
};

TEST(ReplicationTest, FollowerConvergesAndServesIdenticalLookups) {
  Node leader("repl_leader.wal");
  Node follower("repl_follower.wal");

  // Mutations applied BEFORE the follower subscribes arrive via WAL-file
  // catch-up; the ones after arrive via the live tail.
  for (int i = 0; i < 6; ++i) {
    auto added = leader.updater->AddEntity(
        "pre-subscribe entity " + std::to_string(i), "",
        {"pre alias " + std::to_string(i)});
    ASSERT_TRUE(added.ok()) << added.status().ToString();
  }
  ASSERT_TRUE(leader.updater->RemoveEntity(3).ok());

  WalShipServer ship;
  ASSERT_TRUE(ship.Start(leader.updater.get(), 0).ok());
  WalReplica replica;
  WalReplicaOptions rep_options;
  rep_options.leader_port = ship.port();
  ASSERT_TRUE(replica.Start(follower.updater.get(), rep_options).ok());

  ASSERT_TRUE(replica.WaitForSeq(7, milliseconds(10000)))
      << "catch-up did not reach seq 7";

  for (int i = 0; i < 5; ++i) {
    auto added = leader.updater->AddEntity(
        "live entity " + std::to_string(i), "Q" + std::to_string(900 + i),
        {});
    ASSERT_TRUE(added.ok());
  }
  const uint64_t final_seq = 12;
  ASSERT_TRUE(replica.WaitForSeq(final_seq, milliseconds(10000)))
      << "live tail did not reach seq " << final_seq;

  // Lag drains to 0 once the heartbeat confirms the leader has nothing
  // newer in flight. The replayed-records counter trails the applied seq
  // by one instruction, so the poll covers both.
  const auto deadline = std::chrono::steady_clock::now() + milliseconds(5000);
  while (std::chrono::steady_clock::now() < deadline) {
    const WalReplicaStatsSnapshot now = replica.Stats();
    if (now.replication_lag_seq == 0 && now.records_replayed >= final_seq &&
        now.freshness_us.total > 0) {
      break;
    }
    std::this_thread::sleep_for(milliseconds(10));
  }
  const WalReplicaStatsSnapshot stats = replica.Stats();
  EXPECT_EQ(stats.replication_lag_seq, 0);
  EXPECT_EQ(stats.applied_seq, final_seq);
  EXPECT_EQ(stats.records_replayed, final_seq);
  EXPECT_EQ(stats.replay_errors, 0u);
  EXPECT_GT(stats.freshness_us.total, 0u);

  // The converged follower answers every probe exactly like the leader —
  // fresh entities found, the removed one gone, tie order included.
  std::vector<std::string> queries;
  for (kg::EntityId e = 0; e < leader.graph.num_entities(); ++e) {
    queries.push_back(leader.graph.entity(e).label);
  }
  const auto leader_results = leader.el->BulkLookup(queries, 10, false);
  const auto follower_results = follower.el->BulkLookup(queries, 10, false);
  ASSERT_EQ(leader_results.size(), follower_results.size());
  for (size_t q = 0; q < queries.size(); ++q) {
    ASSERT_EQ(leader_results[q].size(), follower_results[q].size())
        << queries[q];
    for (size_t i = 0; i < leader_results[q].size(); ++i) {
      EXPECT_EQ(leader_results[q][i].entity, follower_results[q][i].entity)
          << queries[q] << " rank " << i;
    }
  }

  replica.Stop();
  ship.Stop();

  // The metrics renderer covers all three roles in one exposition.
  const std::string text = PrometheusClusterText(nullptr, nullptr, &stats);
  EXPECT_NE(text.find("emblookup_cluster_replication_lag_seq 0"),
            std::string::npos);
  EXPECT_NE(text.find("emblookup_cluster_wal_records_replayed_total 12"),
            std::string::npos);
  EXPECT_NE(text.find("emblookup_cluster_freshness_microseconds_bucket"),
            std::string::npos);
}

TEST(ReplicationTest, SeqGapIsAStatusErrorNeverASilentSkip) {
  Node node("repl_gap.wal");
  update::Mutation first;
  first.kind = update::MutationKind::kAddEntity;
  first.seq = 1;
  first.entity = node.graph.num_entities();
  first.label = "gap test entity";
  ASSERT_TRUE(node.updater->ApplyReplicated(first).ok());

  // seq 3 with seq 2 never applied: a hole in the stream.
  update::Mutation gapped = first;
  gapped.seq = 3;
  gapped.entity = node.graph.num_entities();
  gapped.label = "gap test entity 2";
  const Status gap = node.updater->ApplyReplicated(gapped);
  ASSERT_FALSE(gap.ok());
  EXPECT_EQ(gap.code(), StatusCode::kIoError);
  EXPECT_EQ(node.updater->stats().last_seq, 1u);

  // A duplicate of an applied seq is an idempotent OK skip (retried
  // segments after a resubscribe must not double-apply).
  update::Mutation dup = first;
  const uint64_t entities_before =
      static_cast<uint64_t>(node.graph.num_entities());
  ASSERT_TRUE(node.updater->ApplyReplicated(dup).ok());
  EXPECT_EQ(static_cast<uint64_t>(node.graph.num_entities()),
            entities_before);
  EXPECT_EQ(node.updater->stats().last_seq, 1u);
}

TEST(ReplicationTest, TornSegmentsDecodeToStatusNotUB) {
  std::vector<update::Mutation> records;
  for (int i = 0; i < 3; ++i) {
    update::Mutation m;
    m.kind = update::MutationKind::kAddEntity;
    m.seq = static_cast<uint64_t>(i) + 1;
    m.entity = 140 + i;
    m.label = "torn segment entity " + std::to_string(i);
    m.aliases = {"alias a", "alias b"};
    records.push_back(m);
  }
  std::vector<uint8_t> stream;
  std::vector<size_t> boundaries = {0};
  for (const update::Mutation& m : records) {
    const std::vector<uint8_t> bytes = update::EncodeRecord(m);
    stream.insert(stream.end(), bytes.begin(), bytes.end());
    boundaries.push_back(stream.size());
  }
  update::WalReadOptions strict;
  strict.tolerate_torn_tail = false;

  // Every truncation point: whole-record prefixes decode exactly their
  // records; anything torn is a Status error (and ASan sees no UB).
  for (size_t len = 0; len <= stream.size(); ++len) {
    auto decoded = update::DecodeRecords(stream.data(), len, strict);
    const auto boundary =
        std::find(boundaries.begin(), boundaries.end(), len);
    if (boundary != boundaries.end()) {
      ASSERT_TRUE(decoded.ok()) << "clean prefix of " << len << " bytes";
      EXPECT_EQ(decoded.value().records.size(),
                static_cast<size_t>(boundary - boundaries.begin()));
    } else {
      EXPECT_FALSE(decoded.ok()) << "torn prefix of " << len << " bytes";
    }
  }

  // Bit flips anywhere in the stream must never yield a wrong record
  // silently: either a Status, or (flips past the prefix the CRC of an
  // earlier record covers) the same prefix of intact records.
  for (size_t byte = 0; byte < stream.size(); byte += 7) {
    std::vector<uint8_t> flipped = stream;
    flipped[byte] ^= 0x20;
    auto decoded = update::DecodeRecords(flipped.data(), flipped.size(),
                                         strict);
    if (decoded.ok()) {
      ASSERT_EQ(decoded.value().records.size(), records.size());
      for (size_t i = 0; i < records.size(); ++i) {
        EXPECT_TRUE(decoded.value().records[i] == records[i]);
      }
    }
  }
}

TEST(ReplicationTest, ReplicaResubscribesAfterLeaderRestart) {
  Node leader("repl_restart_leader.wal");
  Node follower("repl_restart_follower.wal");

  WalShipServer ship;
  ASSERT_TRUE(ship.Start(leader.updater.get(), 0).ok());
  const int port = ship.port();

  WalReplica replica;
  WalReplicaOptions rep_options;
  rep_options.leader_port = port;
  rep_options.reconnect_backoff = milliseconds(20);
  ASSERT_TRUE(replica.Start(follower.updater.get(), rep_options).ok());

  ASSERT_TRUE(leader.updater->AddEntity("before restart", "", {}).ok());
  ASSERT_TRUE(replica.WaitForSeq(1, milliseconds(10000)));

  ship.Stop();  // Leader goes away; the replica starts probing.
  std::this_thread::sleep_for(milliseconds(100));

  WalShipServer revived;
  ASSERT_TRUE(revived.Start(leader.updater.get(), port).ok());
  ASSERT_TRUE(leader.updater->AddEntity("after restart", "", {}).ok());
  ASSERT_TRUE(replica.WaitForSeq(2, milliseconds(10000)))
      << "replica did not resubscribe after leader restart";
  EXPECT_GE(replica.Stats().reconnects, 1u);
  EXPECT_EQ(replica.Stats().replay_errors, 0u);
}

// --- Metrics -----------------------------------------------------------------

TEST(ClusterMetricsTest, AllFamiliesEmittedForEveryRole) {
  // nullptr for every role must still print the full family list (the
  // metrics<->docs set-equality gate scrapes one exposition).
  const std::string text = PrometheusClusterText(nullptr, nullptr, nullptr);
  for (const char* family : {
           "emblookup_cluster_router_requests_total",
           "emblookup_cluster_router_partial_total",
           "emblookup_cluster_shard_rpcs_total",
           "emblookup_cluster_shard_rpc_failures_total",
           "emblookup_cluster_shard_retries_total",
           "emblookup_cluster_hedged_rpcs_total",
           "emblookup_cluster_ejections_total",
           "emblookup_cluster_reinstatements_total",
           "emblookup_cluster_shards_ejected",
           "emblookup_cluster_wal_segments_shipped_total",
           "emblookup_cluster_wal_records_shipped_total",
           "emblookup_cluster_followers_connected",
           "emblookup_cluster_replication_lag_seq",
           "emblookup_cluster_freshness_microseconds",
           "emblookup_cluster_wal_records_replayed_total",
           "emblookup_cluster_replica_reconnects_total",
       }) {
    EXPECT_NE(text.find(family), std::string::npos) << family;
  }
}

}  // namespace
}  // namespace emblookup::cluster
