// Tests for the src/update online-mutation subsystem: WAL round trips and
// corruption robustness (truncation and bit flips must surface as a
// Status, never UB — run under ASan in CI), the lookup-equivalence
// property (N random mutations through the delta path must match a
// from-scratch rebuild bit-exactly, tie order included, before AND after
// compaction), crash recovery (an acknowledged WAL record survives a kill
// between append and apply), snapshot forward/backward compatibility, the
// Persist tombstone registry, epoch-tagged cache invalidation, and a
// concurrent mutate-while-lookup stress run (the TSan target).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/emblookup.h"
#include "kg/knowledge_graph.h"
#include "kg/synthetic_kg.h"
#include "serve/lookup_server.h"
#include "serve/query_cache.h"
#include "store/snapshot_reader.h"
#include "update/delta_index.h"
#include "update/updater.h"
#include "update/wal.h"

namespace emblookup {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::vector<uint8_t> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path,
                    const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

void AppendFileBytes(const std::string& path,
                     const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::app);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

// --- WAL unit tests ----------------------------------------------------------

std::vector<update::Mutation> SampleMutations() {
  std::vector<update::Mutation> records;
  update::Mutation add;
  add.kind = update::MutationKind::kAddEntity;
  add.seq = 1;
  add.entity = 140;
  add.label = "steam locomotive";
  add.qid = "Q171043";
  add.aliases = {"steam engine", "iron horse"};
  records.push_back(add);
  update::Mutation aliases;
  aliases.kind = update::MutationKind::kUpdateAliases;
  aliases.seq = 2;
  aliases.entity = 7;
  aliases.aliases = {"new mention"};
  records.push_back(aliases);
  update::Mutation remove;
  remove.kind = update::MutationKind::kRemoveEntity;
  remove.seq = 3;
  remove.entity = 12;
  records.push_back(remove);
  return records;
}

std::string WriteSampleWal(const std::string& name) {
  const std::string path = TempPath(name);
  ::remove(path.c_str());
  update::WalWriter writer;
  EXPECT_TRUE(writer.Open(path).ok());
  for (const update::Mutation& m : SampleMutations()) {
    EXPECT_TRUE(writer.Append(m).ok());
  }
  writer.Close();
  return path;
}

TEST(WalTest, AppendReadRoundTrip) {
  const std::string path = WriteSampleWal("wal_roundtrip.wal");
  update::WalReadOptions strict;
  strict.tolerate_torn_tail = false;
  auto contents = update::ReadWalFile(path, strict);
  ASSERT_TRUE(contents.ok()) << contents.status().ToString();
  EXPECT_EQ(contents.value().torn_tail_bytes, 0u);
  const std::vector<update::Mutation> want = SampleMutations();
  ASSERT_EQ(contents.value().records.size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_TRUE(contents.value().records[i] == want[i]) << "record " << i;
  }
}

TEST(WalTest, MissingFileIsAnEmptyLog) {
  auto contents = update::ReadWalFile(TempPath("wal_does_not_exist.wal"));
  ASSERT_TRUE(contents.ok());
  EXPECT_TRUE(contents.value().records.empty());
  EXPECT_EQ(contents.value().torn_tail_bytes, 0u);
}

TEST(WalTest, ShortOrGarbageFilesAreErrors) {
  const std::string path = TempPath("wal_garbage.wal");
  // Shorter than the header: an error even in tolerant mode (there is no
  // valid log to salvage a prefix of).
  WriteFileBytes(path, {1, 2, 3});
  EXPECT_FALSE(update::ReadWalFile(path).ok());
  // Bad magic.
  std::vector<uint8_t> junk(update::kWalHeaderBytes, 0xAB);
  WriteFileBytes(path, junk);
  EXPECT_FALSE(update::ReadWalFile(path).ok());
  // WalWriter::Open must also reject attaching to a non-WAL file.
  update::WalWriter writer;
  EXPECT_FALSE(writer.Open(path).ok());
}

TEST(WalTest, TruncationIsTornTailTolerantAndStrictError) {
  const std::string path = WriteSampleWal("wal_truncate_src.wal");
  const std::vector<uint8_t> bytes = ReadFileBytes(path);
  update::WalReadOptions strict;
  strict.tolerate_torn_tail = false;

  // Cut mid-record-header, mid-payload, and one byte short: tolerant reads
  // return the intact prefix and report the torn bytes; strict reads fail.
  const size_t header = update::kWalHeaderBytes;
  const size_t cuts[] = {header + 1, header + update::kWalRecordHeaderBytes + 3,
                         bytes.size() / 2, bytes.size() - 1};
  for (const size_t cut : cuts) {
    ASSERT_LT(cut, bytes.size());
    const std::string trunc = TempPath("wal_truncated.wal");
    WriteFileBytes(trunc, std::vector<uint8_t>(bytes.begin(),
                                               bytes.begin() + cut));
    auto tolerant = update::ReadWalFile(trunc);
    ASSERT_TRUE(tolerant.ok()) << "cut at " << cut << ": "
                               << tolerant.status().ToString();
    EXPECT_GT(tolerant.value().torn_tail_bytes, 0u) << "cut at " << cut;
    EXPECT_LT(tolerant.value().records.size(), SampleMutations().size());
    // The salvaged prefix holds only undamaged records.
    const std::vector<update::Mutation> want = SampleMutations();
    for (size_t i = 0; i < tolerant.value().records.size(); ++i) {
      EXPECT_TRUE(tolerant.value().records[i] == want[i]);
    }
    EXPECT_FALSE(update::ReadWalFile(trunc, strict).ok()) << "cut at " << cut;
  }

  // A cut exactly on a record boundary is a cleanly closed shorter log.
  const size_t at = header + update::EncodeRecord(SampleMutations()[0]).size();
  const std::string clean = TempPath("wal_clean_prefix.wal");
  WriteFileBytes(clean,
                 std::vector<uint8_t>(bytes.begin(), bytes.begin() + at));
  auto prefix = update::ReadWalFile(clean, strict);
  ASSERT_TRUE(prefix.ok()) << prefix.status().ToString();
  EXPECT_EQ(prefix.value().records.size(), 1u);
  EXPECT_EQ(prefix.value().torn_tail_bytes, 0u);
}

TEST(WalTest, BitFlipsAreDetectedNeverCrash) {
  const std::string path = WriteSampleWal("wal_bitflip_src.wal");
  const std::vector<uint8_t> original = ReadFileBytes(path);
  update::WalReadOptions strict;
  strict.tolerate_torn_tail = false;
  const std::string flipped = TempPath("wal_bitflip.wal");
  for (size_t pos = 0; pos < original.size(); ++pos) {
    for (const uint8_t mask : {uint8_t{0x01}, uint8_t{0x80}}) {
      std::vector<uint8_t> bytes = original;
      bytes[pos] ^= mask;
      WriteFileBytes(flipped, bytes);
      // Tolerant mode must never crash or read out of bounds regardless of
      // outcome (a flipped size field may masquerade as a torn tail).
      (void)update::ReadWalFile(flipped);
      // Strict mode must reject every flip past the file header's reserved
      // field: magic/version flips fail header validation, record flips
      // fail the CRC (it covers seq + payload) or size/monotonicity checks.
      if (pos < 8 || pos >= update::kWalHeaderBytes) {
        EXPECT_FALSE(update::ReadWalFile(flipped, strict).ok())
            << "flip " << int(mask) << " at byte " << pos;
      }
    }
  }
}

TEST(WalTest, RewriteReplacesContentsAtomically) {
  const std::string path = WriteSampleWal("wal_rewrite.wal");
  update::WalWriter writer;
  ASSERT_TRUE(writer.Open(path).ok());
  // Keep only the remove record — the Persist() tombstone-registry shape.
  std::vector<update::Mutation> keep = {SampleMutations()[2]};
  ASSERT_TRUE(writer.Rewrite(keep).ok());
  // The writer stays usable on the new file.
  update::Mutation extra;
  extra.kind = update::MutationKind::kRemoveEntity;
  extra.seq = 9;
  extra.entity = 55;
  ASSERT_TRUE(writer.Append(extra).ok());
  writer.Close();

  update::WalReadOptions strict;
  strict.tolerate_torn_tail = false;
  auto contents = update::ReadWalFile(path, strict);
  ASSERT_TRUE(contents.ok()) << contents.status().ToString();
  ASSERT_EQ(contents.value().records.size(), 2u);
  EXPECT_TRUE(contents.value().records[0] == keep[0]);
  EXPECT_TRUE(contents.value().records[1] == extra);
}

// --- DeltaIndex unit tests ---------------------------------------------------

TEST(DeltaIndexTest, SearchDedupsRowsAndHonorsTombstones) {
  update::DeltaIndex delta(/*dim=*/2);
  // Entity 1: two rows, the second closer to the probe; entity 2: one row.
  delta.AddRow(1, std::vector<float>{10.f, 0.f}.data());
  delta.AddRow(1, std::vector<float>{1.f, 0.f}.data());
  delta.AddRow(2, std::vector<float>{2.f, 0.f}.data());
  const std::vector<float> probe = {0.f, 0.f};

  std::vector<ann::Neighbor> out;
  delta.Search(probe.data(), 10, &out);
  ASSERT_EQ(out.size(), 2u);  // Deduped to one hit per entity.
  EXPECT_EQ(out[0].id, 1);
  EXPECT_EQ(out[0].dist, 1.f);  // Best row wins, not the first row.
  EXPECT_EQ(out[1].id, 2);
  EXPECT_EQ(out[1].dist, 4.f);

  delta.Tombstone(1, /*main_rows=*/3);
  EXPECT_TRUE(delta.Masked(1));
  EXPECT_GE(delta.masked_row_bound(), 3);
  EXPECT_EQ(delta.tombstone_count(), 1);
  out.clear();
  delta.Search(probe.data(), 10, &out);
  ASSERT_EQ(out.size(), 1u);  // Tombstoned entity's rows are dead.
  EXPECT_EQ(out[0].id, 2);
}

// --- Shared fixtures for updater tests --------------------------------------

const kg::KnowledgeGraph& BaseKg() {
  // Destructible statics (not leaky singletons): this suite runs under
  // ASan/LSan in CI.
  static const kg::KnowledgeGraph graph = [] {
    kg::SyntheticKgOptions options;
    options.num_entities = 140;
    options.seed = 33;
    return kg::GenerateSyntheticKg(options);
  }();
  return graph;
}

core::EmbLookupOptions FastOptions(bool index_aliases) {
  core::EmbLookupOptions options;
  // Syntactic-only keeps the tests fast and load-deterministic; a flat
  // uncompressed index makes the equivalence checks exact.
  options.encoder.use_semantic_branch = false;
  options.miner.triplets_per_entity = 6;
  options.trainer.epochs = 4;
  options.index.kind = core::IndexKind::kFlat;
  options.index.compress = false;
  options.index.index_aliases = index_aliases;
  return options;
}

/// Encoder weights trained once and shared by every test (the update path
/// never retrains; LoadFromKg rebuilds only the index).
const std::string& ModelPath() {
  static const std::string path = [] {
    const std::string p = TempPath("update_test_model.bin");
    auto built = core::EmbLookup::TrainFromKg(BaseKg(), FastOptions(false));
    EXPECT_TRUE(built.ok()) << built.status().ToString();
    EXPECT_TRUE(built.value()->SaveModel(p).ok());
    return p;
  }();
  return path;
}

std::unique_ptr<core::EmbLookup> MakeInstance(const kg::KnowledgeGraph& graph,
                                              bool index_aliases) {
  auto loaded =
      core::EmbLookup::LoadFromKg(graph, FastOptions(index_aliases),
                                  ModelPath());
  EXPECT_TRUE(loaded.ok()) << loaded.status().ToString();
  return std::move(loaded).value();
}

/// A fresh WAL path (any stale file from an earlier run removed).
std::string FreshWal(const std::string& name) {
  const std::string path = TempPath(name);
  ::remove(path.c_str());
  return path;
}

update::UpdaterOptions ForegroundOptions(const std::string& wal_path) {
  update::UpdaterOptions options;
  options.wal_path = wal_path;
  options.compact_delta_rows = 0;   // Explicit Compact() only: the
  options.compact_masked_rows = 0;  // equivalence tests pin when it runs.
  return options;
}

std::unique_ptr<update::IndexUpdater> OpenUpdater(
    core::EmbLookup* el, kg::KnowledgeGraph* graph,
    const update::UpdaterOptions& options) {
  auto opened = update::IndexUpdater::Open(el, graph, options);
  EXPECT_TRUE(opened.ok()) << opened.status().ToString();
  return std::move(opened).value();
}

/// Every entity label of `graph` — probes that cover base, fresh, masked
/// and tombstoned entities alike.
std::vector<std::string> AllLabelQueries(const kg::KnowledgeGraph& graph) {
  std::vector<std::string> queries;
  queries.reserve(static_cast<size_t>(graph.num_entities()) + 1);
  for (kg::EntityId e = 0; e < graph.num_entities(); ++e) {
    queries.push_back(graph.entity(e).label);
  }
  queries.push_back("a query matching nothing in particular");
  return queries;
}

std::vector<std::vector<core::LookupResult>> RunLookups(
    const core::EmbLookup& el, const std::vector<std::string>& queries,
    int64_t k) {
  std::vector<std::vector<core::LookupResult>> out;
  out.reserve(queries.size());
  for (const std::string& q : queries) out.push_back(el.Lookup(q, k));
  return out;
}

void ExpectSameLookups(
    const std::vector<std::vector<core::LookupResult>>& got,
    const std::vector<std::vector<core::LookupResult>>& want,
    const char* what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i].size(), want[i].size()) << what << ": query " << i;
    for (size_t j = 0; j < got[i].size(); ++j) {
      // Bit-exact, order included: ids AND distances must match the
      // from-scratch rebuild, ties broken identically.
      EXPECT_EQ(got[i][j].entity, want[i][j].entity)
          << what << ": query " << i << " rank " << j;
      EXPECT_EQ(got[i][j].dist, want[i][j].dist)
          << what << ": query " << i << " rank " << j;
    }
  }
}

/// Applies `n` random mutations (adds with fresh labels/aliases, removes,
/// alias updates) through `up`, mirroring the catalog effect into
/// `removed`. Returns the number applied.
int RunRandomMutations(update::IndexUpdater* up,
                       const kg::KnowledgeGraph& graph, int n, uint64_t seed,
                       std::unordered_set<kg::EntityId>* removed) {
  Rng rng(seed);
  std::vector<kg::EntityId> live;
  for (kg::EntityId e = 0; e < graph.num_entities(); ++e) live.push_back(e);
  int applied = 0;
  for (int i = 0; i < n; ++i) {
    const double roll = rng.UniformDouble();
    if (roll < 0.5 || live.empty()) {
      std::vector<std::string> aliases;
      const int64_t num_aliases = rng.UniformInt(0, 2);
      for (int64_t a = 0; a < num_aliases; ++a) {
        aliases.push_back("fresh mention " + std::to_string(i) + " " +
                          std::to_string(a));
      }
      auto id = up->AddEntity("fresh entity " + std::to_string(i),
                              "QF" + std::to_string(i), aliases);
      EXPECT_TRUE(id.ok()) << id.status().ToString();
      live.push_back(id.value());
    } else if (roll < 0.75) {
      const size_t pick = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(live.size()) - 1));
      const kg::EntityId victim = live[pick];
      EXPECT_TRUE(up->RemoveEntity(victim).ok());
      removed->insert(victim);
      live.erase(live.begin() + static_cast<ptrdiff_t>(pick));
    } else {
      const kg::EntityId target = live[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(live.size()) - 1))];
      EXPECT_TRUE(
          up->UpdateAliases(target, {"updated mention " + std::to_string(i)})
              .ok());
    }
    ++applied;
  }
  return applied;
}

/// Ground truth: a from-scratch instance over the mutated catalog with the
/// removed set excluded at build time — what the LSM path must match.
std::vector<std::vector<core::LookupResult>> ReferenceLookups(
    const kg::KnowledgeGraph& graph, bool index_aliases,
    const std::unordered_set<kg::EntityId>& removed,
    const std::vector<std::string>& queries, int64_t k) {
  std::unique_ptr<core::EmbLookup> ref = MakeInstance(graph, index_aliases);
  auto snapshot = ref->BuildIndexSnapshot(
      ref->index_config(), removed.empty() ? nullptr : &removed);
  EXPECT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  EXPECT_TRUE(ref->SwapIndex(std::move(snapshot).value()).ok());
  return RunLookups(*ref, queries, k);
}

// --- Updater behavior --------------------------------------------------------

TEST(UpdaterTest, MutationsAreImmediatelySearchable) {
  kg::KnowledgeGraph graph = BaseKg();
  auto el = MakeInstance(graph, /*index_aliases=*/true);
  auto up = OpenUpdater(el.get(), &graph,
                        ForegroundOptions(FreshWal("upd_basic.wal")));

  const uint64_t epoch_before = el->serving_epoch();
  auto id = up->AddEntity("zyqqian polymerase", "Q99901",
                          {"zyqqian enzyme"});
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  EXPECT_EQ(id.value(), BaseKg().num_entities());
  EXPECT_GT(el->serving_epoch(), epoch_before);  // Mutations bump the epoch.

  // The fresh entity wins its own label AND its alias (alias indexing on).
  auto by_label = el->Lookup("zyqqian polymerase", 3);
  ASSERT_FALSE(by_label.empty());
  EXPECT_EQ(by_label[0].entity, id.value());
  auto by_alias = el->Lookup("zyqqian enzyme", 3);
  ASSERT_FALSE(by_alias.empty());
  EXPECT_EQ(by_alias[0].entity, id.value());

  // UpdateAliases makes a new mention searchable without a rebuild.
  ASSERT_TRUE(up->UpdateAliases(3, {"xoqwerty mention"}).ok());
  auto by_new_alias = el->Lookup("xoqwerty mention", 3);
  ASSERT_FALSE(by_new_alias.empty());
  EXPECT_EQ(by_new_alias[0].entity, 3);

  // RemoveEntity drops the entity from results immediately.
  ASSERT_TRUE(up->RemoveEntity(id.value()).ok());
  for (const auto& hit : el->Lookup("zyqqian polymerase", 10)) {
    EXPECT_NE(hit.entity, id.value());
  }

  const update::UpdaterStats stats = up->stats();
  EXPECT_EQ(stats.applied_mutations, 3u);
  EXPECT_EQ(stats.last_seq, 3u);
  EXPECT_EQ(stats.tombstones, 1);
}

TEST(UpdaterTest, MutationErrorCases) {
  kg::KnowledgeGraph graph = BaseKg();
  auto el = MakeInstance(graph, /*index_aliases=*/false);
  auto up = OpenUpdater(el.get(), &graph,
                        ForegroundOptions(FreshWal("upd_errors.wal")));

  EXPECT_EQ(up->AddEntity("", "Q1", {}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(up->RemoveEntity(999999).code(), StatusCode::kNotFound);
  EXPECT_EQ(up->UpdateAliases(999999, {"x"}).code(), StatusCode::kNotFound);
  EXPECT_EQ(up->UpdateAliases(1, {}).code(), StatusCode::kInvalidArgument);

  ASSERT_TRUE(up->RemoveEntity(5).ok());
  EXPECT_EQ(up->RemoveEntity(5).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(up->UpdateAliases(5, {"x"}).code(),
            StatusCode::kFailedPrecondition);

  // Failed mutations must not consume sequence numbers or apply anything.
  EXPECT_EQ(up->stats().applied_mutations, 1u);
  EXPECT_EQ(up->stats().last_seq, 1u);
}

TEST(UpdaterTest, Sq8BackendSupportsDeltaOverlayAndCompaction) {
  // The SQ8 main index serves through the same delta-overlay/compaction
  // machinery as the other approximate backends: fresh entities hit from
  // the delta, tombstones mask removed ones, and Compact() retrains the
  // quantizer on the surviving catalog.
  kg::KnowledgeGraph graph = BaseKg();
  core::EmbLookupOptions options = FastOptions(/*index_aliases=*/false);
  options.index.kind = core::IndexKind::kSq8;
  auto loaded = core::EmbLookup::LoadFromKg(graph, options, ModelPath());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  auto el = std::move(loaded).value();
  EXPECT_EQ(el->index().kind(), core::IndexKind::kSq8);
  EXPECT_TRUE(el->index().compressed());
  auto up = OpenUpdater(el.get(), &graph,
                        ForegroundOptions(FreshWal("upd_sq8.wal")));

  auto id = up->AddEntity("zyqqian polymerase", "Q99901", {});
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  auto by_label = el->Lookup("zyqqian polymerase", 3);
  ASSERT_FALSE(by_label.empty());
  EXPECT_EQ(by_label[0].entity, id.value());

  ASSERT_TRUE(up->RemoveEntity(5).ok());
  for (const auto& hit : el->Lookup(graph.entity(5).label, 10)) {
    EXPECT_NE(hit.entity, 5);
  }

  ASSERT_TRUE(up->Compact().ok());
  EXPECT_EQ(up->stats().delta_rows, 0);
  auto after = el->Lookup("zyqqian polymerase", 3);
  ASSERT_FALSE(after.empty());
  EXPECT_EQ(after[0].entity, id.value());
  for (const auto& hit : el->Lookup(graph.entity(5).label, 10)) {
    EXPECT_NE(hit.entity, 5);
  }
}

TEST(UpdaterTest, HnswBackendSupportsDeltaOverlayAndCompaction) {
  // The HNSW graph index cannot absorb inserts into a borrowed/serving
  // structure, so it leans on the same delta-overlay path: new entities
  // come from the flat delta, tombstones mask graph hits, and Compact()
  // rebuilds the graph over the surviving catalog.
  kg::KnowledgeGraph graph = BaseKg();
  core::EmbLookupOptions options = FastOptions(/*index_aliases=*/false);
  options.index.kind = core::IndexKind::kHnsw;
  options.index.hnsw_ef_search = 120;  // Tiny KG: search near-exactly.
  auto loaded = core::EmbLookup::LoadFromKg(graph, options, ModelPath());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  auto el = std::move(loaded).value();
  EXPECT_EQ(el->index().kind(), core::IndexKind::kHnsw);
  EXPECT_FALSE(el->index().compressed());  // HNSW stores raw floats.
  auto up = OpenUpdater(el.get(), &graph,
                        ForegroundOptions(FreshWal("upd_hnsw.wal")));

  auto id = up->AddEntity("zyqqian polymerase", "Q99901", {});
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  auto by_label = el->Lookup("zyqqian polymerase", 3);
  ASSERT_FALSE(by_label.empty());
  EXPECT_EQ(by_label[0].entity, id.value());

  ASSERT_TRUE(up->RemoveEntity(5).ok());
  for (const auto& hit : el->Lookup(graph.entity(5).label, 10)) {
    EXPECT_NE(hit.entity, 5);
  }

  ASSERT_TRUE(up->Compact().ok());
  EXPECT_EQ(up->stats().delta_rows, 0);
  auto after = el->Lookup("zyqqian polymerase", 3);
  ASSERT_FALSE(after.empty());
  EXPECT_EQ(after[0].entity, id.value());
  for (const auto& hit : el->Lookup(graph.entity(5).label, 10)) {
    EXPECT_NE(hit.entity, 5);
  }
}

void RunEquivalenceTest(bool index_aliases, uint64_t seed) {
  kg::KnowledgeGraph graph = BaseKg();
  auto el = MakeInstance(graph, index_aliases);
  const std::string wal = FreshWal(
      index_aliases ? "upd_equiv_aliases.wal" : "upd_equiv_labels.wal");
  auto up = OpenUpdater(el.get(), &graph, ForegroundOptions(wal));

  std::unordered_set<kg::EntityId> removed;
  RunRandomMutations(up.get(), BaseKg(), /*n=*/40, seed, &removed);
  ASSERT_FALSE(removed.empty()) << "seed produced no removals";
  ASSERT_GT(graph.num_entities(), BaseKg().num_entities())
      << "seed produced no adds";

  const std::vector<std::string> queries = AllLabelQueries(graph);
  const int64_t k = 5;
  const auto want =
      ReferenceLookups(graph, index_aliases, removed, queries, k);

  // Merged main+delta search must match the from-scratch rebuild
  // bit-exactly BEFORE compaction (the delta path)...
  ExpectSameLookups(RunLookups(*el, queries, k), want, "pre-compaction");

  // ...and AFTER compaction (the rebuilt main index, tombstones excluded).
  ASSERT_TRUE(up->Compact().ok());
  EXPECT_EQ(up->stats().delta_rows, 0);
  ExpectSameLookups(RunLookups(*el, queries, k), want, "post-compaction");

  // A second compaction is a no-op for results (tombstones persist in the
  // reseeded delta, so removed entities cannot resurface).
  ASSERT_TRUE(up->Compact().ok());
  ExpectSameLookups(RunLookups(*el, queries, k), want, "re-compaction");
}

TEST(UpdaterTest, LookupEquivalenceLabelsOnly) {
  RunEquivalenceTest(/*index_aliases=*/false, /*seed=*/101);
}

TEST(UpdaterTest, LookupEquivalenceWithAliasIndexing) {
  RunEquivalenceTest(/*index_aliases=*/true, /*seed=*/202);
}

// --- Crash recovery ----------------------------------------------------------

TEST(UpdaterTest, WalReplayRestoresStateAfterCrash) {
  const std::string wal = FreshWal("upd_replay.wal");
  const std::string base_tsv = TempPath("upd_replay_base.tsv");
  ASSERT_TRUE(BaseKg().SaveTsv(base_tsv).ok());

  kg::EntityId added = kg::kInvalidEntity;
  uint64_t last_seq = 0;
  {
    kg::KnowledgeGraph graph = BaseKg();
    auto el = MakeInstance(graph, /*index_aliases=*/false);
    auto up = OpenUpdater(el.get(), &graph, ForegroundOptions(wal));
    auto id = up->AddEntity("phoenix reactor", "Q77001", {"phoenix core"});
    ASSERT_TRUE(id.ok());
    added = id.value();
    ASSERT_TRUE(up->RemoveEntity(3).ok());
    ASSERT_TRUE(up->UpdateAliases(7, {"resilient mention"}).ok());
    last_seq = up->stats().last_seq;
    // Destructors: simulated "kill" — nothing persisted beyond the WAL.
  }

  // Simulate a crash between WAL append and in-memory apply: append one
  // acknowledged-but-unapplied record directly to the log file.
  update::Mutation lazarus;
  lazarus.kind = update::MutationKind::kAddEntity;
  lazarus.seq = last_seq + 1;
  lazarus.entity = BaseKg().num_entities() + 1;  // The id it would receive.
  lazarus.label = "lazarus beacon";
  lazarus.qid = "Q77002";
  AppendFileBytes(wal, update::EncodeRecord(lazarus));

  // Restart from the base catalog: replay must reconstruct everything.
  auto reloaded = kg::KnowledgeGraph::LoadTsv(base_tsv);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  kg::KnowledgeGraph graph2 = std::move(reloaded).value();
  auto el2 = MakeInstance(graph2, /*index_aliases=*/false);
  auto up2 = OpenUpdater(el2.get(), &graph2, ForegroundOptions(wal));

  EXPECT_EQ(up2->stats().replayed_mutations, 4u);
  EXPECT_EQ(up2->stats().last_seq, last_seq + 1);
  ASSERT_EQ(graph2.num_entities(), BaseKg().num_entities() + 2);
  EXPECT_EQ(graph2.entity(added).label, "phoenix reactor");

  // The replayed state serves bit-identically to a from-scratch rebuild
  // over the recovered catalog (tombstone for entity 3 excluded) — every
  // pre-crash mutation AND the appended record included.
  const std::vector<std::string> queries = AllLabelQueries(graph2);
  ExpectSameLookups(
      RunLookups(*el2, queries, 5),
      ReferenceLookups(graph2, /*index_aliases=*/false, {3}, queries, 5),
      "replayed");

  // The acknowledged-but-unapplied record lost no data: the entity is in
  // the catalog and searchable.
  auto hits = el2->Lookup("lazarus beacon", 3);
  ASSERT_FALSE(hits.empty());
  EXPECT_EQ(hits[0].entity, BaseKg().num_entities() + 1);

  // The tombstone also survived the restart, through compaction too.
  ASSERT_TRUE(up2->Compact().ok());
  for (const auto& hit : el2->Lookup(BaseKg().entity(3).label, 10)) {
    EXPECT_NE(hit.entity, 3);
  }
}

TEST(UpdaterTest, TornWalTailIsDiscardedAtOpen) {
  const std::string wal = FreshWal("upd_torn.wal");
  kg::KnowledgeGraph graph = BaseKg();
  auto el = MakeInstance(graph, /*index_aliases=*/false);
  {
    auto up = OpenUpdater(el.get(), &graph, ForegroundOptions(wal));
    ASSERT_TRUE(up->AddEntity("surviving entity", "Q5001", {}).ok());
  }
  // A torn record: header + half a payload, as left by a mid-write crash.
  update::Mutation torn;
  torn.kind = update::MutationKind::kAddEntity;
  torn.seq = 2;
  torn.label = "never acknowledged";
  std::vector<uint8_t> record = update::EncodeRecord(torn);
  record.resize(record.size() / 2);
  AppendFileBytes(wal, record);

  kg::KnowledgeGraph graph2 = BaseKg();
  auto el2 = MakeInstance(graph2, /*index_aliases=*/false);
  auto up2 = OpenUpdater(el2.get(), &graph2, ForegroundOptions(wal));
  EXPECT_GT(up2->stats().torn_tail_bytes, 0u);
  EXPECT_EQ(up2->stats().replayed_mutations, 1u);
  EXPECT_EQ(graph2.num_entities(), BaseKg().num_entities() + 1);

  // Open() rewrote the log without the garbage: appends land cleanly and a
  // strict re-read parses the whole file.
  ASSERT_TRUE(up2->AddEntity("post-repair entity", "Q5002", {}).ok());
  update::WalReadOptions strict;
  strict.tolerate_torn_tail = false;
  auto contents = update::ReadWalFile(wal, strict);
  ASSERT_TRUE(contents.ok()) << contents.status().ToString();
  EXPECT_EQ(contents.value().records.size(), 2u);
}

// --- Persist + snapshot compatibility ---------------------------------------

TEST(UpdaterTest, PersistShrinksWalToTombstoneRegistry) {
  const std::string wal = FreshWal("upd_persist.wal");
  const std::string snap = TempPath("upd_persist.snap");
  const std::string kg_out = TempPath("upd_persist_kg.tsv");

  kg::KnowledgeGraph graph = BaseKg();
  auto el = MakeInstance(graph, /*index_aliases=*/false);
  std::vector<std::string> queries;
  std::vector<std::vector<core::LookupResult>> want;
  uint64_t last_seq = 0;
  {
    auto up = OpenUpdater(el.get(), &graph, ForegroundOptions(wal));
    ASSERT_TRUE(up->AddEntity("persisted entity", "Q6001", {}).ok());
    ASSERT_TRUE(up->RemoveEntity(2).ok());
    ASSERT_TRUE(up->RemoveEntity(9).ok());
    ASSERT_TRUE(up->Persist(snap, kg_out).ok());
    last_seq = up->stats().last_seq;
    queries = AllLabelQueries(graph);
    want = RunLookups(*el, queries, 5);
  }

  // The WAL shrank to its tombstone registry: remove records only. These
  // must outlive compaction — the append-only catalog TSV still lists the
  // removed entities, so a restart without them would resurrect both.
  auto contents = update::ReadWalFile(wal);
  ASSERT_TRUE(contents.ok());
  ASSERT_EQ(contents.value().records.size(), 2u);
  for (const update::Mutation& m : contents.value().records) {
    EXPECT_EQ(m.kind, update::MutationKind::kRemoveEntity);
  }

  // Full restore: TSV catalog + snapshot index + WAL replay.
  auto reloaded = kg::KnowledgeGraph::LoadTsv(kg_out);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  kg::KnowledgeGraph graph2 = std::move(reloaded).value();
  ASSERT_EQ(graph2.num_entities(), BaseKg().num_entities() + 1);
  auto info = update::IndexUpdater::ReadUpdateInfo(snap);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info.value().last_seq, last_seq);
  EXPECT_EQ(info.value().tombstone_count, 2);
  EXPECT_FALSE(info.value().has_wal_tail);

  auto restored =
      core::EmbLookup::LoadSnapshot(graph2, FastOptions(false), snap);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  auto el2 = std::move(restored).value();
  update::UpdaterOptions options = ForegroundOptions(wal);
  options.baked_seq = info.value().last_seq;
  auto up2 = OpenUpdater(el2.get(), &graph2, options);

  ExpectSameLookups(RunLookups(*el2, queries, 5), want, "restored");

  // Tombstones survive further compactions on the restored instance.
  ASSERT_TRUE(up2->Compact().ok());
  for (const auto& hit : el2->Lookup(BaseKg().entity(2).label, 10)) {
    EXPECT_NE(hit.entity, 2);
  }
}

TEST(SnapshotCompatTest, PreUpdateSnapshotsStillLoad) {
  // A snapshot written without any updater involvement (the pre-src/update
  // format: no kWalTail section, zeroed bookkeeping) must read as such and
  // load fine — forward compatibility for existing fleets.
  kg::KnowledgeGraph graph = BaseKg();
  auto el = MakeInstance(graph, /*index_aliases=*/false);
  const std::string snap = TempPath("compat_plain.snap");
  ASSERT_TRUE(el->SaveSnapshot(snap).ok());

  auto info = update::IndexUpdater::ReadUpdateInfo(snap);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info.value().last_seq, 0u);
  EXPECT_EQ(info.value().delta_rows, 0);
  EXPECT_EQ(info.value().tombstone_count, 0);
  EXPECT_FALSE(info.value().has_wal_tail);

  auto opened = store::SnapshotReader::Open(snap);
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(opened.value()->Find(store::SectionId::kWalTail), nullptr);

  auto restored =
      core::EmbLookup::LoadSnapshot(graph, FastOptions(false), snap);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  // ReplayCatalogTail is a no-op without the section.
  EXPECT_TRUE(update::IndexUpdater::ReplayCatalogTail(snap, &graph).ok());
  EXPECT_EQ(graph.num_entities(), BaseKg().num_entities());
}

TEST(SnapshotCompatTest, WalTailSnapshotIsSelfContained) {
  const std::string wal = FreshWal("compat_tail.wal");
  const std::string snap = TempPath("compat_tail.snap");
  const std::string base_tsv = TempPath("compat_tail_base.tsv");
  ASSERT_TRUE(BaseKg().SaveTsv(base_tsv).ok());

  std::vector<std::string> queries;
  std::vector<std::vector<core::LookupResult>> want;
  int64_t mutated_entities = 0;
  {
    kg::KnowledgeGraph graph = BaseKg();
    auto el = MakeInstance(graph, /*index_aliases=*/false);
    auto up = OpenUpdater(el.get(), &graph, ForegroundOptions(wal));
    ASSERT_TRUE(up->AddEntity("tail entity one", "Q8001", {}).ok());
    ASSERT_TRUE(up->AddEntity("tail entity two", "Q8002", {}).ok());
    ASSERT_TRUE(up->RemoveEntity(4).ok());
    ASSERT_TRUE(up->WriteSnapshot(snap).ok());
    mutated_entities = graph.num_entities();
    queries = AllLabelQueries(graph);
    want = RunLookups(*el, queries, 5);
  }

  auto info = update::IndexUpdater::ReadUpdateInfo(snap);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info.value().last_seq, 3u);
  EXPECT_EQ(info.value().delta_rows, 0);  // WriteSnapshot compacts first.
  EXPECT_EQ(info.value().tombstone_count, 1);
  EXPECT_TRUE(info.value().has_wal_tail);

  // Restore from a STALE catalog (the base TSV): the embedded WAL tail
  // repairs it, so the snapshot alone is a complete backup.
  auto reloaded = kg::KnowledgeGraph::LoadTsv(base_tsv);
  ASSERT_TRUE(reloaded.ok());
  kg::KnowledgeGraph graph2 = std::move(reloaded).value();
  ASSERT_TRUE(update::IndexUpdater::ReplayCatalogTail(snap, &graph2).ok());
  ASSERT_EQ(graph2.num_entities(), mutated_entities);

  auto restored =
      core::EmbLookup::LoadSnapshot(graph2, FastOptions(false), snap);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  auto el2 = std::move(restored).value();
  update::UpdaterOptions options = ForegroundOptions(wal);
  options.baked_seq = info.value().last_seq;
  auto up2 = OpenUpdater(el2.get(), &graph2, options);

  ExpectSameLookups(RunLookups(*el2, queries, 5), want, "wal-tail restore");
  ASSERT_TRUE(up2->Compact().ok());
  for (const auto& hit : el2->Lookup(BaseKg().entity(4).label, 10)) {
    EXPECT_NE(hit.entity, 4);
  }
}

// --- Epoch-tagged query cache ------------------------------------------------

TEST(CacheEpochTest, StaleEpochEntriesAreDroppedOnProbe) {
  serve::QueryCache cache;
  cache.Put("berlin", 5, /*epoch=*/1, {10, 11});
  std::vector<kg::EntityId> out;
  ASSERT_TRUE(cache.Get("berlin", 5, /*epoch=*/1, &out));
  EXPECT_EQ(out, (std::vector<kg::EntityId>{10, 11}));

  // Same key probed under a newer epoch: the entry is stale — dropped and
  // counted, the probe reads as a miss.
  EXPECT_FALSE(cache.Get("berlin", 5, /*epoch=*/2, &out));
  serve::QueryCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.stale_drops, 1u);
  EXPECT_EQ(stats.entries, 0u);  // Dropped, not retained.
  // And it stays gone even for the original epoch.
  EXPECT_FALSE(cache.Get("berlin", 5, /*epoch=*/1, &out));
}

TEST(ServerUpdateTest, MutationsInvalidateCacheAndCountInMetrics) {
  kg::KnowledgeGraph graph = BaseKg();
  auto el = MakeInstance(graph, /*index_aliases=*/false);
  auto up = OpenUpdater(el.get(), &graph,
                        ForegroundOptions(FreshWal("srv_epoch.wal")));

  serve::ServerOptions options;
  options.max_delay = std::chrono::microseconds(100);
  serve::LookupServer server(el.get(), options);
  server.AttachUpdater(up.get());

  const std::string query = BaseKg().entity(0).label;
  auto first = server.LookupSync(query, 5);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_FALSE(first.value().from_cache);
  auto second = server.LookupSync(query, 5);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second.value().from_cache);
  EXPECT_EQ(second.value().ids, first.value().ids);

  // A mutation bumps the serving epoch; the cached entry must NOT serve.
  auto id = server.AddEntity("cache buster entity", "Q9001", {});
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  auto third = server.LookupSync(query, 5);
  ASSERT_TRUE(third.ok());
  EXPECT_FALSE(third.value().from_cache);
  EXPECT_GE(server.CacheStats().stale_drops, 1u);

  // The fresh entity serves through the batch path immediately.
  auto fresh = server.LookupSync("cache buster entity", 3);
  ASSERT_TRUE(fresh.ok());
  ASSERT_FALSE(fresh.value().ids.empty());
  EXPECT_EQ(fresh.value().ids[0], id.value());

  ASSERT_TRUE(server.RemoveEntity(id.value()).ok());
  ASSERT_TRUE(server.Compact().ok());
  auto after = server.LookupSync("cache buster entity", 5);
  ASSERT_TRUE(after.ok());
  for (const kg::EntityId hit : after.value().ids) {
    EXPECT_NE(hit, id.value());
  }

  const serve::MetricsSnapshot metrics = server.Metrics();
  EXPECT_EQ(metrics.updates_applied, 2u);
  EXPECT_EQ(metrics.compactions, 1u);
  const std::string text = server.StatsText();
  EXPECT_NE(text.find("updates_applied"), std::string::npos);
  EXPECT_NE(text.find("cache_stale_drops"), std::string::npos);
}

TEST(ServerUpdateTest, EndpointsFailWithoutUpdater) {
  kg::KnowledgeGraph graph = BaseKg();
  auto el = MakeInstance(graph, /*index_aliases=*/false);
  serve::LookupServer server(el.get());
  EXPECT_EQ(server.AddEntity("x", "", {}).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(server.RemoveEntity(0).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(server.UpdateAliases(0, {"y"}).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(server.Compact().code(), StatusCode::kFailedPrecondition);
}

// --- Concurrency (the TSan target) -------------------------------------------

TEST(ConcurrencyTest, MutateWhileLookupWithBackgroundCompaction) {
  kg::KnowledgeGraph graph = BaseKg();
  auto el = MakeInstance(graph, /*index_aliases=*/false);
  update::UpdaterOptions options;
  options.wal_path = FreshWal("upd_stress.wal");
  options.fsync_wal = false;  // Throughput: durability is not under test.
  options.background_compaction = true;
  options.compact_delta_rows = 8;  // Force frequent RCU swaps mid-lookup.
  options.compact_masked_rows = 8;
  options.compact_poll_ms = 2;
  auto up = OpenUpdater(el.get(), &graph, options);

  // Probes resolve against base entities only — the graph itself grows
  // concurrently and must not be read outside the updater's lock.
  std::vector<std::string> probes;
  for (kg::EntityId e = 0; e < BaseKg().num_entities(); e += 11) {
    probes.push_back(BaseKg().entity(e).label);
  }

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  auto reader = [&](uint64_t seed) {
    Rng rng(seed);
    while (!stop.load(std::memory_order_relaxed)) {
      const std::string& q = probes[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(probes.size()) - 1))];
      auto hits = el->Lookup(q, 5);
      if (hits.empty()) failures.fetch_add(1);
      for (const auto& hit : hits) {
        if (hit.entity < 0) failures.fetch_add(1);
      }
    }
  };
  std::thread r1(reader, 1);
  std::thread r2(reader, 2);

  Rng rng(77);
  std::vector<kg::EntityId> live;
  for (kg::EntityId e = 0; e < BaseKg().num_entities(); ++e) {
    live.push_back(e);
  }
  for (int i = 0; i < 60; ++i) {
    const double roll = rng.UniformDouble();
    if (roll < 0.6 || live.size() < 20) {
      auto id = up->AddEntity("stress entity " + std::to_string(i),
                              "QS" + std::to_string(i), {});
      EXPECT_TRUE(id.ok()) << id.status().ToString();
      live.push_back(id.value());
    } else if (roll < 0.8) {
      const size_t pick = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(live.size()) - 1));
      EXPECT_TRUE(up->RemoveEntity(live[pick]).ok());
      live.erase(live.begin() + static_cast<ptrdiff_t>(pick));
    } else {
      const kg::EntityId target = live[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(live.size()) - 1))];
      EXPECT_TRUE(
          up->UpdateAliases(target, {"stress mention " + std::to_string(i)})
              .ok());
    }
  }

  stop.store(true);
  r1.join();
  r2.join();
  EXPECT_EQ(failures.load(), 0);
  // The background compactor fires under the low thresholds; the delta is
  // still over threshold when the writer stops, so give the poll loop (2ms
  // cadence, starved of the mutex while the writer hammered it) a moment.
  for (int i = 0; i < 1000 && up->stats().compactions == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GT(up->stats().compactions, 0u);

  // Quiesced state is still exactly equivalent to a from-scratch rebuild.
  ASSERT_TRUE(up->Compact().ok());
  std::unordered_set<kg::EntityId> removed;
  for (kg::EntityId e = 0; e < graph.num_entities(); ++e) {
    if (std::find(live.begin(), live.end(), e) == live.end()) {
      removed.insert(e);
    }
  }
  const std::vector<std::string> queries = AllLabelQueries(graph);
  ExpectSameLookups(
      RunLookups(*el, queries, 5),
      ReferenceLookups(graph, /*index_aliases=*/false, removed, queries, 5),
      "post-stress");
}

}  // namespace
}  // namespace emblookup
