// Tests for the extension features: IVF indexes, alias-expanded entity
// indexing, the contrastive loss, and TransE KG embeddings.

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "ann/flat_index.h"
#include "ann/ivf_index.h"
#include "common/rng.h"
#include "core/emblookup.h"
#include "core/encoder.h"
#include "core/entity_index.h"
#include "embed/transe.h"
#include "kg/synthetic_kg.h"
#include "tensor/ops.h"
#include "tests/gradcheck.h"

namespace emblookup {
namespace {

std::vector<float> Blobs(int64_t n, int64_t dim, int64_t blobs, Rng* rng) {
  std::vector<float> centers(blobs * dim);
  for (auto& c : centers) c = rng->UniformFloat(-10, 10);
  std::vector<float> data(n * dim);
  for (int64_t i = 0; i < n; ++i) {
    const int64_t b = static_cast<int64_t>(rng->Uniform(blobs));
    for (int64_t d = 0; d < dim; ++d) {
      data[i * dim + d] =
          centers[b * dim + d] + static_cast<float>(rng->Normal()) * 0.3f;
    }
  }
  return data;
}

// --- IVF -------------------------------------------------------------------------

class IvfStorageTest
    : public ::testing::TestWithParam<ann::IvfIndex::Storage> {};

TEST_P(IvfStorageTest, HighRecallWithEnoughProbes) {
  Rng rng(3);
  const int64_t n = 1000, dim = 16;
  const auto data = Blobs(n, dim, 12, &rng);
  ann::IvfIndex::Options options;
  options.num_lists = 16;
  options.nprobe = 8;
  options.storage = GetParam();
  options.pq_m = 4;
  ann::IvfIndex ivf(dim, options);
  ASSERT_TRUE(ivf.Train(data.data(), n).ok());
  ASSERT_TRUE(ivf.Add(data.data(), n).ok());
  ann::FlatIndex flat(dim);
  flat.Add(data.data(), n);

  double recall = 0;
  const int64_t queries = 40, k = 10;
  for (int64_t q = 0; q < queries; ++q) {
    const auto truth = flat.Search(data.data() + q * dim, k);
    const auto approx = ivf.Search(data.data() + q * dim, k);
    int64_t inter = 0;
    for (const auto& t : truth) {
      for (const auto& a : approx) {
        if (a.id == t.id) {
          ++inter;
          break;
        }
      }
    }
    recall += static_cast<double>(inter) / k;
  }
  EXPECT_GT(recall / queries, 0.6);
}

INSTANTIATE_TEST_SUITE_P(BothStorages, IvfStorageTest,
                         ::testing::Values(ann::IvfIndex::Storage::kFlat,
                                           ann::IvfIndex::Storage::kPq),
                         [](const auto& info) {
                           return info.param == ann::IvfIndex::Storage::kFlat
                                      ? "flat"
                                      : "pq";
                         });

TEST(IvfIndexTest, MoreProbesNeverHurtRecall) {
  Rng rng(4);
  const int64_t n = 600, dim = 8;
  const auto data = Blobs(n, dim, 10, &rng);
  auto recall_at = [&](int64_t nprobe) {
    ann::IvfIndex::Options options;
    options.num_lists = 20;
    options.nprobe = nprobe;
    ann::IvfIndex ivf(dim, options);
    EXPECT_TRUE(ivf.Train(data.data(), n).ok());
    EXPECT_TRUE(ivf.Add(data.data(), n).ok());
    ann::FlatIndex flat(dim);
    flat.Add(data.data(), n);
    double recall = 0;
    for (int64_t q = 0; q < 30; ++q) {
      const auto truth = flat.Search(data.data() + q * dim, 5);
      const auto approx = ivf.Search(data.data() + q * dim, 5);
      for (const auto& t : truth) {
        for (const auto& a : approx) {
          if (a.id == t.id) {
            recall += 0.2;
            break;
          }
        }
      }
    }
    return recall / 30.0;
  };
  EXPECT_GE(recall_at(20) + 1e-9, recall_at(2));
}

TEST(IvfIndexTest, AddBeforeTrainRejected) {
  ann::IvfIndex ivf(8, {});
  std::vector<float> v(8, 0.0f);
  EXPECT_FALSE(ivf.Add(v.data(), 1).ok());
}

TEST(IvfIndexTest, PqStorageSmallerThanFlat) {
  Rng rng(5);
  const int64_t n = 400, dim = 16;
  const auto data = Blobs(n, dim, 6, &rng);
  ann::IvfIndex::Options flat_options;
  flat_options.storage = ann::IvfIndex::Storage::kFlat;
  ann::IvfIndex ivf_flat(dim, flat_options);
  ASSERT_TRUE(ivf_flat.Train(data.data(), n).ok());
  ASSERT_TRUE(ivf_flat.Add(data.data(), n).ok());
  ann::IvfIndex::Options pq_options;
  pq_options.storage = ann::IvfIndex::Storage::kPq;
  pq_options.pq_m = 4;
  ann::IvfIndex ivf_pq(dim, pq_options);
  ASSERT_TRUE(ivf_pq.Train(data.data(), n).ok());
  ASSERT_TRUE(ivf_pq.Add(data.data(), n).ok());
  EXPECT_LT(ivf_pq.StorageBytes(), ivf_flat.StorageBytes());
}

// --- EntityIndex extensions -----------------------------------------------------------

const kg::KnowledgeGraph& SmallKg() {
  static const kg::KnowledgeGraph& graph = [] {
    kg::SyntheticKgOptions options;
    options.num_entities = 250;
    options.seed = 77;
    return *new kg::KnowledgeGraph(kg::GenerateSyntheticKg(options));
  }();
  return graph;
}

class IndexKindTest : public ::testing::TestWithParam<core::IndexKind> {};

TEST_P(IndexKindTest, ExactLabelRetrievable) {
  core::EncoderConfig enc_config;
  core::EmbLookupEncoder encoder(enc_config, nullptr);
  core::IndexConfig config;
  config.kind = GetParam();
  config.ivf_lists = 8;
  config.ivf_nprobe = 8;  // Probe everything: exactness at tiny scale.
  auto index = core::EntityIndex::Build(SmallKg(), &encoder, config);
  ASSERT_TRUE(index.ok());
  tensor::NoGradGuard guard;
  int hits = 0, total = 0;
  for (kg::EntityId e = 0; e < SmallKg().num_entities(); e += 10) {
    tensor::Tensor q = encoder.EncodeBatch({SmallKg().entity(e).label});
    for (const auto& nb : index.value().Search(q.data(), 10)) {
      if (nb.id == e) {
        ++hits;
        break;
      }
    }
    ++total;
  }
  EXPECT_GT(static_cast<double>(hits) / total, 0.8);
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, IndexKindTest,
    ::testing::Values(core::IndexKind::kFlat, core::IndexKind::kPq,
                      core::IndexKind::kIvfFlat, core::IndexKind::kIvfPq),
    [](const auto& info) {
      switch (info.param) {
        case core::IndexKind::kFlat: return "flat";
        case core::IndexKind::kPq: return "pq";
        case core::IndexKind::kIvfFlat: return "ivf_flat";
        case core::IndexKind::kIvfPq: return "ivf_pq";
        default: return "auto";
      }
    });

TEST(AliasIndexTest, RowsExceedEntitiesAndDedupWorks) {
  core::EncoderConfig enc_config;
  core::EmbLookupEncoder encoder(enc_config, nullptr);
  core::IndexConfig config;
  config.kind = core::IndexKind::kFlat;
  config.index_aliases = true;
  auto index = core::EntityIndex::Build(SmallKg(), &encoder, config);
  ASSERT_TRUE(index.ok());
  EXPECT_TRUE(index.value().aliases_indexed());
  EXPECT_GT(index.value().size(), SmallKg().num_entities());

  // Results are entity ids (within range) and unique.
  tensor::NoGradGuard guard;
  tensor::Tensor q = encoder.EncodeBatch({SmallKg().entity(0).label});
  const auto results = index.value().Search(q.data(), 10);
  std::set<int64_t> unique;
  for (const auto& nb : results) {
    EXPECT_GE(nb.id, 0);
    EXPECT_LT(nb.id, SmallKg().num_entities());
    unique.insert(nb.id);
  }
  EXPECT_EQ(unique.size(), results.size());
}

TEST(AliasIndexTest, AliasQueryHitsByConstruction) {
  // With an untrained encoder, an alias query still retrieves its entity
  // because the alias string itself is indexed (exact embedding match).
  core::EncoderConfig enc_config;
  core::EmbLookupEncoder encoder(enc_config, nullptr);
  core::IndexConfig config;
  config.kind = core::IndexKind::kFlat;
  config.index_aliases = true;
  auto index = core::EntityIndex::Build(SmallKg(), &encoder, config);
  ASSERT_TRUE(index.ok());
  tensor::NoGradGuard guard;
  int hits = 0, total = 0;
  for (kg::EntityId e = 0; e < SmallKg().num_entities(); e += 10) {
    const auto& aliases = SmallKg().entity(e).aliases;
    if (aliases.empty()) continue;
    tensor::Tensor q = encoder.EncodeBatch({aliases[0]});
    for (const auto& nb : index.value().Search(q.data(), 10)) {
      if (nb.id == e) {
        ++hits;
        break;
      }
    }
    ++total;
  }
  ASSERT_GT(total, 0);
  EXPECT_GT(static_cast<double>(hits) / total, 0.8);
}

// --- Contrastive loss ---------------------------------------------------------------

TEST(ContrastiveLossTest, ZeroOnlyWhenPairsSeparated) {
  tensor::Tensor a = tensor::Tensor::FromData({1, 2}, {0, 0});
  tensor::Tensor p = tensor::Tensor::FromData({1, 2}, {0, 0});
  tensor::Tensor n = tensor::Tensor::FromData({1, 2}, {3, 0});
  EXPECT_FLOAT_EQ(
      tensor::ContrastiveLossFromTriplets(a, p, n, 1.0f).item(), 0.0f);
  tensor::Tensor near = tensor::Tensor::FromData({1, 2}, {0.5f, 0});
  EXPECT_GT(tensor::ContrastiveLossFromTriplets(a, p, near, 1.0f).item(),
            0.0f);
}

TEST(ContrastiveLossTest, GradientsMatchNumeric) {
  Rng rng(6);
  tensor::ExpectGradientsMatch(
      [](const std::vector<tensor::Tensor>& in) {
        return tensor::ContrastiveLossFromTriplets(in[0], in[1], in[2],
                                                   0.5f);
      },
      {tensor::RandomTensor({3, 4}, &rng), tensor::RandomTensor({3, 4}, &rng),
       tensor::RandomTensor({3, 4}, &rng)});
}

// --- TransE ---------------------------------------------------------------------------

TEST(TransETest, LearnsLinkStructure) {
  embed::TransE::Options options;
  options.epochs = 40;
  embed::TransE transe(options);
  transe.Train(SmallKg());
  ASSERT_TRUE(transe.trained());
  Rng rng(9);
  // Far better than the 10/100 random baseline.
  EXPECT_GT(transe.TailHitsAt10(SmallKg(), 200, &rng), 0.5);
}

TEST(TransETest, EntityVectorsUnitNorm) {
  embed::TransE transe;
  transe.Train(SmallKg());
  for (kg::EntityId e = 0; e < 20; ++e) {
    const float* v = transe.EntityVec(e);
    float sq = 0;
    for (int64_t d = 0; d < transe.dim(); ++d) sq += v[d] * v[d];
    EXPECT_NEAR(sq, 1.0f, 1e-3f);
  }
}

TEST(TransETest, CoSubjectsOfSameFactAreSimilar) {
  // TransE's translation property h + r ≈ t makes entities that share a
  // (relation, object) pair nearly identical — e.g. two citizens of the
  // same country — while unrelated pairs stay apart.
  embed::TransE::Options options;
  options.epochs = 40;
  embed::TransE transe(options);
  transe.Train(SmallKg());

  // Group subjects by (relation, object).
  std::map<std::pair<kg::PropertyId, kg::EntityId>, std::vector<kg::EntityId>>
      groups;
  for (kg::EntityId e = 0; e < SmallKg().num_entities(); ++e) {
    for (const kg::Fact& f : SmallKg().FactsOf(e)) {
      if (!f.is_literal()) groups[{f.property, f.object}].push_back(e);
    }
  }
  double co_subject = 0, random = 0;
  int64_t nc = 0, nn = 0;
  Rng rng(10);
  for (const auto& [key, members] : groups) {
    if (members.size() < 2) continue;
    co_subject += transe.Similarity(members[0], members[1]);
    ++nc;
    random += transe.Similarity(
        members[0],
        static_cast<kg::EntityId>(rng.Uniform(SmallKg().num_entities())));
    ++nn;
  }
  ASSERT_GT(nc, 0);
  EXPECT_GT(co_subject / nc, random / nn);
}

}  // namespace
}  // namespace emblookup
