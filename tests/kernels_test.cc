#include "ann/kernels.h"

#include <cmath>
#include <cstdlib>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "ann/flat_index.h"
#include "ann/pq_index.h"
#include "ann/sq8_index.h"
#include "ann/topk.h"
#include "common/cpu_features.h"
#include "common/rng.h"

namespace emblookup::ann {
namespace {

namespace k = kernels;

/// Every non-scalar family this build + CPU can actually run.
std::vector<const k::KernelTable*> SimdTables() {
  std::vector<const k::KernelTable*> tables;
  for (k::Arch arch : {k::Arch::kAvx2, k::Arch::kAvx512, k::Arch::kNeon}) {
    if (const k::KernelTable* t = k::Table(arch)) tables.push_back(t);
  }
  return tables;
}

/// Restores the dispatched table on scope exit.
class DispatchGuard {
 public:
  DispatchGuard() : original_(k::Dispatch().arch) {}
  ~DispatchGuard() { k::ForceArch(original_); }

 private:
  k::Arch original_;
};

void ExpectRelNear(float got, float want, float rel_tol) {
  const float tol = rel_tol * std::max(1.0f, std::fabs(want));
  EXPECT_NEAR(got, want, tol);
}

std::vector<float> RandomVec(Rng* rng, int64_t n, float lo = -1.0f,
                             float hi = 1.0f) {
  std::vector<float> v(n);
  for (auto& x : v) x = rng->UniformFloat(lo, hi);
  return v;
}

// Odd sizes on purpose: every SIMD kernel has 16-, 8- and scalar-tail
// paths, and the tails are where bugs hide.
constexpr int64_t kDims[] = {1, 2, 3, 7, 8, 15, 16, 17, 31, 33,
                             64, 100, 127, 128, 300};

TEST(KernelsTest, ScalarTableAlwaysAvailable) {
  const k::KernelTable* scalar = k::Table(k::Arch::kScalar);
  ASSERT_NE(scalar, nullptr);
  EXPECT_EQ(scalar->arch, k::Arch::kScalar);
  EXPECT_STREQ(scalar->name, "scalar");
}

TEST(KernelsTest, DispatchHonorsEnvOverride) {
  // Meaningful under `EMBLOOKUP_KERNELS=scalar ctest` (the CI fallback
  // pass); otherwise just asserts dispatch picked a runnable family.
  const char* env = std::getenv("EMBLOOKUP_KERNELS");
  const k::KernelTable& dispatched = k::Dispatch();
  if (env != nullptr && std::string(env) == "scalar") {
    EXPECT_EQ(dispatched.arch, k::Arch::kScalar);
  } else {
    EXPECT_NE(k::Table(dispatched.arch), nullptr);
  }
}

TEST(KernelsTest, L2SqrMatchesScalarAcrossDims) {
  const k::KernelTable* scalar = k::Table(k::Arch::kScalar);
  Rng rng(101);
  for (const k::KernelTable* simd : SimdTables()) {
    for (int64_t dim : kDims) {
      for (int rep = 0; rep < 8; ++rep) {
        const auto a = RandomVec(&rng, dim, -2.0f, 2.0f);
        const auto b = RandomVec(&rng, dim, -2.0f, 2.0f);
        const float want = scalar->l2_sqr(a.data(), b.data(), dim);
        const float got = simd->l2_sqr(a.data(), b.data(), dim);
        ExpectRelNear(got, want, 1e-4f);
      }
    }
  }
}

TEST(KernelsTest, InnerProductMatchesScalarAcrossDims) {
  const k::KernelTable* scalar = k::Table(k::Arch::kScalar);
  Rng rng(102);
  for (const k::KernelTable* simd : SimdTables()) {
    for (int64_t dim : kDims) {
      for (int rep = 0; rep < 8; ++rep) {
        const auto a = RandomVec(&rng, dim, -2.0f, 2.0f);
        const auto b = RandomVec(&rng, dim, -2.0f, 2.0f);
        const float want = scalar->inner_product(a.data(), b.data(), dim);
        const float got = simd->inner_product(a.data(), b.data(), dim);
        ExpectRelNear(got, want, 1e-4f);
      }
    }
  }
}

TEST(KernelsTest, L2SqrBatchMatchesScalarAcrossOddLengths) {
  const k::KernelTable* scalar = k::Table(k::Arch::kScalar);
  Rng rng(103);
  for (const k::KernelTable* simd : SimdTables()) {
    for (int64_t dim : {3, 17, 64}) {
      for (int64_t n : {1, 2, 7, 63, 100}) {
        const auto rows = RandomVec(&rng, n * dim);
        const auto query = RandomVec(&rng, dim);
        std::vector<float> want(n), got(n);
        scalar->l2_sqr_batch(query.data(), rows.data(), n, dim, want.data());
        simd->l2_sqr_batch(query.data(), rows.data(), n, dim, got.data());
        for (int64_t i = 0; i < n; ++i) ExpectRelNear(got[i], want[i], 1e-4f);
      }
    }
  }
}

TEST(KernelsTest, AxpyMatchesScalarAcrossDims) {
  const k::KernelTable* scalar = k::Table(k::Arch::kScalar);
  Rng rng(115);
  for (const k::KernelTable* simd : SimdTables()) {
    for (int64_t dim : kDims) {
      for (int rep = 0; rep < 4; ++rep) {
        const float a = rng.UniformFloat(-2.0f, 2.0f);
        const auto x = RandomVec(&rng, dim, -2.0f, 2.0f);
        auto want = RandomVec(&rng, dim, -2.0f, 2.0f);
        auto got = want;
        scalar->axpy(a, x.data(), dim, want.data());
        simd->axpy(a, x.data(), dim, got.data());
        for (int64_t i = 0; i < dim; ++i) {
          // FMA vs separate mul+add: one-rounding differences only.
          ExpectRelNear(got[i], want[i], 1e-5f);
        }
      }
    }
  }
}

TEST(KernelsTest, GemmBiasActMatchesScalar) {
  const k::KernelTable* scalar = k::Table(k::Arch::kScalar);
  Rng rng(116);
  for (const k::KernelTable* simd : SimdTables()) {
    // Odd n values exercise the axpy tails; lda > k exercises the strided
    // A-row addressing the batched conv relies on.
    for (auto [m, kk, n] : {std::tuple<int64_t, int64_t, int64_t>{1, 1, 1},
                            {3, 5, 7},
                            {8, 16, 9},
                            {7, 47, 33}}) {
      for (int64_t lda : {kk, kk + 3}) {
        auto a = RandomVec(&rng, m * lda, -2.0f, 2.0f);
        // Sprinkle zeros into A: both implementations take the zero-skip
        // branch (the one-hot sparsity win) and must agree on it.
        for (auto& v : a) {
          if (rng.Bernoulli(0.5)) v = 0.0f;
        }
        const auto b = RandomVec(&rng, kk * n, -2.0f, 2.0f);
        const auto bias = RandomVec(&rng, n, -1.0f, 1.0f);
        for (int act : {k::kActIdentity, k::kActRelu}) {
          std::vector<float> want(m * n), got(m * n);
          scalar->gemm_bias_act(a.data(), lda, b.data(), bias.data(), m, kk,
                                n, want.data(), act);
          simd->gemm_bias_act(a.data(), lda, b.data(), bias.data(), m, kk, n,
                              got.data(), act);
          for (int64_t i = 0; i < m * n; ++i) {
            ExpectRelNear(got[i], want[i], 1e-5f);
            if (act == k::kActRelu) EXPECT_GE(got[i], 0.0f);
          }
        }
      }
    }
  }
}

TEST(KernelsTest, GemmBiasActNullBiasZeroInitializes) {
  // bias == nullptr means C starts at zero — the contract the packed-conv
  // path relies on when a layer has no bias term.
  const k::KernelTable& table = k::Dispatch();
  const int64_t m = 2, kk = 3, n = 5;
  Rng rng(117);
  const auto a = RandomVec(&rng, m * kk);
  const auto b = RandomVec(&rng, kk * n);
  std::vector<float> out(m * n, 123.0f);  // Poisoned: must be overwritten.
  table.gemm_bias_act(a.data(), kk, b.data(), nullptr, m, kk, n, out.data(),
                      k::kActIdentity);
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      float want = 0.0f;
      for (int64_t r = 0; r < kk; ++r) want += a[i * kk + r] * b[r * n + j];
      ExpectRelNear(out[i * n + j], want, 1e-5f);
    }
  }
}

TEST(KernelsTest, AdcTableMatchesScalar) {
  const k::KernelTable* scalar = k::Table(k::Arch::kScalar);
  Rng rng(104);
  for (const k::KernelTable* simd : SimdTables()) {
    // dsub 3 exercises the scalar tail inside the sub-space distance.
    for (int64_t dsub : {3, 8}) {
      const int64_t m = 4, ksub = 256;
      const auto codebooks = RandomVec(&rng, m * ksub * dsub);
      const auto query = RandomVec(&rng, m * dsub);
      std::vector<float> want(m * ksub), got(m * ksub);
      scalar->adc_table(query.data(), codebooks.data(), m, ksub, dsub,
                        want.data());
      simd->adc_table(query.data(), codebooks.data(), m, ksub, dsub,
                      got.data());
      for (int64_t i = 0; i < m * ksub; ++i) {
        ExpectRelNear(got[i], want[i], 1e-4f);
      }
    }
  }
}

TEST(KernelsTest, AdcScanRowMajorMatchesScalar) {
  const k::KernelTable* scalar = k::Table(k::Arch::kScalar);
  Rng rng(105);
  for (const k::KernelTable* simd : SimdTables()) {
    // m 5 and 11 exercise the non-multiple-of-8 tail of the scan.
    for (int64_t m : {5, 8, 11, 16}) {
      const int64_t ksub = 256, n = 37;
      const auto table = RandomVec(&rng, m * ksub, 0.0f, 4.0f);
      std::vector<uint8_t> codes(n * m);
      for (auto& c : codes) c = static_cast<uint8_t>(rng.Uniform(256));
      std::vector<float> want(n), got(n);
      scalar->adc_scan_rowmajor(table.data(), m, ksub, codes.data(), n,
                                want.data());
      simd->adc_scan_rowmajor(table.data(), m, ksub, codes.data(), n,
                              got.data());
      for (int64_t i = 0; i < n; ++i) ExpectRelNear(got[i], want[i], 1e-4f);
    }
  }
}

TEST(KernelsTest, AdcScanBlockMatchesScalar) {
  const k::KernelTable* scalar = k::Table(k::Arch::kScalar);
  Rng rng(106);
  for (const k::KernelTable* simd : SimdTables()) {
    for (int64_t m : {1, 4, 8, 16}) {
      const int64_t ksub = 256;
      const auto table = RandomVec(&rng, m * ksub, 0.0f, 4.0f);
      std::vector<uint8_t> blk(m * k::kAdcBlock);
      for (auto& c : blk) c = static_cast<uint8_t>(rng.Uniform(256));
      float want[k::kAdcBlock], got[k::kAdcBlock];
      scalar->adc_scan_block(table.data(), m, ksub, blk.data(), want);
      simd->adc_scan_block(table.data(), m, ksub, blk.data(), got);
      for (int64_t t = 0; t < k::kAdcBlock; ++t) {
        ExpectRelNear(got[t], want[t], 1e-4f);
      }
    }
  }
}

// --- SQ8 kernels ------------------------------------------------------------

TEST(KernelsTest, Sq8AdotMatchesScalarAcrossDims) {
  const k::KernelTable* scalar = k::Table(k::Arch::kScalar);
  Rng rng(109);
  for (const k::KernelTable* simd : SimdTables()) {
    for (int64_t dim : kDims) {
      for (int rep = 0; rep < 8; ++rep) {
        const auto w = RandomVec(&rng, dim, -2.0f, 2.0f);
        std::vector<uint8_t> codes(dim);
        for (auto& c : codes) c = static_cast<uint8_t>(rng.Uniform(256));
        const float want = scalar->sq8_adot(w.data(), codes.data(), dim);
        const float got = simd->sq8_adot(w.data(), codes.data(), dim);
        ExpectRelNear(got, want, 1e-4f);
      }
    }
  }
}

TEST(KernelsTest, Sq8AdotBatchMatchesScalar) {
  const k::KernelTable* scalar = k::Table(k::Arch::kScalar);
  Rng rng(110);
  for (const k::KernelTable* simd : SimdTables()) {
    for (int64_t dim : {3, 17, 64}) {
      for (int64_t n : {1, 2, 7, 63, 100}) {
        const auto w = RandomVec(&rng, dim, -2.0f, 2.0f);
        std::vector<uint8_t> codes(n * dim);
        for (auto& c : codes) c = static_cast<uint8_t>(rng.Uniform(256));
        std::vector<float> want(n), got(n);
        scalar->sq8_adot_batch(w.data(), codes.data(), n, dim, want.data());
        simd->sq8_adot_batch(w.data(), codes.data(), n, dim, got.data());
        for (int64_t i = 0; i < n; ++i) ExpectRelNear(got[i], want[i], 1e-4f);
      }
    }
  }
}

TEST(KernelsTest, Sq8QdotExactlyMatchesScalarAcrossDims) {
  // Integer kernel: every tier must agree bit-for-bit, not within
  // tolerance — the widening paths (vpmaddwd / vpdpbusd / vmlal) are exact.
  const k::KernelTable* scalar = k::Table(k::Arch::kScalar);
  Rng rng(111);
  for (const k::KernelTable* simd : SimdTables()) {
    for (int64_t dim : kDims) {
      for (int rep = 0; rep < 8; ++rep) {
        std::vector<int8_t> w(dim);
        std::vector<uint8_t> codes(dim);
        for (auto& x : w) x = static_cast<int8_t>(rng.Uniform(256) - 128);
        for (auto& c : codes) c = static_cast<uint8_t>(rng.Uniform(256));
        EXPECT_EQ(simd->sq8_qdot(w.data(), codes.data(), dim),
                  scalar->sq8_qdot(w.data(), codes.data(), dim))
            << simd->name << " dim " << dim;
      }
    }
  }
}

TEST(KernelsTest, Sq8QdotSaturationEdgeCasesAreExact) {
  // The worst case for a 16-bit intermediate: pairs of 255 * (+/-127) and
  // 255 * -128 sum past +/-32767. A vpmaddubsw-style implementation would
  // saturate here; the kernels contract is exact arithmetic.
  const k::KernelTable* scalar = k::Table(k::Arch::kScalar);
  const int8_t kWeights[] = {-128, -127, 127, -128, 127, -128, -127, 127};
  for (const k::KernelTable* simd : SimdTables()) {
    for (int64_t dim : {8, 16, 32, 64, 65, 100, 128, 129}) {
      std::vector<int8_t> w(dim);
      std::vector<uint8_t> codes(dim, 255);
      for (int64_t d = 0; d < dim; ++d) w[d] = kWeights[d % 8];
      const int32_t want = scalar->sq8_qdot(w.data(), codes.data(), dim);
      EXPECT_EQ(simd->sq8_qdot(w.data(), codes.data(), dim), want)
          << simd->name << " dim " << dim;
      // Independent ground truth, not just scalar-vs-simd agreement.
      int32_t expect = 0;
      for (int64_t d = 0; d < dim; ++d) expect += 255 * w[d];
      EXPECT_EQ(want, expect);
    }
  }
}

TEST(KernelsTest, Sq8QdotBatchMatchesScalar) {
  const k::KernelTable* scalar = k::Table(k::Arch::kScalar);
  Rng rng(112);
  for (const k::KernelTable* simd : SimdTables()) {
    const int64_t dim = 33, n = 17;
    std::vector<int8_t> w(dim);
    std::vector<uint8_t> codes(n * dim);
    for (auto& x : w) x = static_cast<int8_t>(rng.Uniform(256) - 128);
    for (auto& c : codes) c = static_cast<uint8_t>(rng.Uniform(256));
    std::vector<int32_t> want(n), got(n);
    scalar->sq8_qdot_batch(w.data(), codes.data(), n, dim, want.data());
    simd->sq8_qdot_batch(w.data(), codes.data(), n, dim, got.data());
    for (int64_t i = 0; i < n; ++i) EXPECT_EQ(got[i], want[i]);
  }
}

// --- end-to-end equivalence: scalar vs dispatched ---------------------------

TEST(KernelDispatchTest, FlatIndexResultsIdenticalScalarVsSimd) {
  if (SimdTables().empty()) GTEST_SKIP() << "no SIMD family on this CPU";
  DispatchGuard guard;
  Rng rng(107);
  const int64_t n = 700, dim = 33;  // odd dim: tails in the hot loop
  const auto data = RandomVec(&rng, n * dim);
  FlatIndex index(dim);
  index.Add(data.data(), n);
  const auto queries = RandomVec(&rng, 20 * dim);

  ASSERT_TRUE(k::ForceArch(k::Arch::kScalar));
  const auto scalar_res = index.BatchSearch(queries.data(), 20, 10);
  ASSERT_TRUE(k::ForceArch(SimdTables().front()->arch));
  const auto simd_res = index.BatchSearch(queries.data(), 20, 10);

  ASSERT_EQ(scalar_res.size(), simd_res.size());
  for (size_t q = 0; q < scalar_res.size(); ++q) {
    ASSERT_EQ(scalar_res[q].size(), simd_res[q].size());
    for (size_t i = 0; i < scalar_res[q].size(); ++i) {
      EXPECT_EQ(scalar_res[q][i].id, simd_res[q][i].id)
          << "query " << q << " rank " << i;
      ExpectRelNear(simd_res[q][i].dist, scalar_res[q][i].dist, 1e-4f);
    }
  }
}

TEST(KernelDispatchTest, PqIndexResultsIdenticalScalarVsSimd) {
  if (SimdTables().empty()) GTEST_SKIP() << "no SIMD family on this CPU";
  DispatchGuard guard;
  Rng rng(108);
  const int64_t n = 600, dim = 32;

  // Train/encode under the scalar kernels so both searches scan the exact
  // same codes; only the query-time path differs between runs.
  ASSERT_TRUE(k::ForceArch(k::Arch::kScalar));
  const auto data = RandomVec(&rng, n * dim);
  PqIndex index(dim, 8);
  ASSERT_TRUE(index.Train(data.data(), n, &rng).ok());
  ASSERT_TRUE(index.Add(data.data(), n).ok());
  const auto queries = RandomVec(&rng, 20 * dim);

  const auto scalar_res = index.BatchSearch(queries.data(), 20, 10);
  ASSERT_TRUE(k::ForceArch(SimdTables().front()->arch));
  const auto simd_res = index.BatchSearch(queries.data(), 20, 10);

  ASSERT_EQ(scalar_res.size(), simd_res.size());
  for (size_t q = 0; q < scalar_res.size(); ++q) {
    ASSERT_EQ(scalar_res[q].size(), simd_res[q].size());
    for (size_t i = 0; i < scalar_res[q].size(); ++i) {
      EXPECT_EQ(scalar_res[q][i].id, simd_res[q][i].id)
          << "query " << q << " rank " << i;
      ExpectRelNear(simd_res[q][i].dist, scalar_res[q][i].dist, 1e-4f);
    }
  }
}

TEST(KernelDispatchTest, Sq8IndexResultsIdenticalScalarVsSimd) {
  if (SimdTables().empty()) GTEST_SKIP() << "no SIMD family on this CPU";
  DispatchGuard guard;
  Rng rng(113);
  const int64_t n = 700, dim = 33;  // odd dim: tails in the hot loop
  const auto data = RandomVec(&rng, n * dim);
  Sq8Index index(dim);
  ASSERT_TRUE(index.Train(data.data(), n).ok());
  ASSERT_TRUE(index.Add(data.data(), n).ok());
  const auto queries = RandomVec(&rng, 20 * dim);

  ASSERT_TRUE(k::ForceArch(k::Arch::kScalar));
  const auto scalar_res = index.BatchSearch(queries.data(), 20, 10);
  for (const k::KernelTable* simd : SimdTables()) {
    ASSERT_TRUE(k::ForceArch(simd->arch));
    const auto simd_res = index.BatchSearch(queries.data(), 20, 10);
    ASSERT_EQ(scalar_res.size(), simd_res.size());
    for (size_t q = 0; q < scalar_res.size(); ++q) {
      ASSERT_EQ(scalar_res[q].size(), simd_res[q].size());
      for (size_t i = 0; i < scalar_res[q].size(); ++i) {
        EXPECT_EQ(scalar_res[q][i].id, simd_res[q][i].id)
            << simd->name << " query " << q << " rank " << i;
        ExpectRelNear(simd_res[q][i].dist, scalar_res[q][i].dist, 1e-4f);
      }
    }
  }
}

TEST(KernelDispatchTest, Sq8RecallAtLeast99PercentVsExactFlat) {
  // The Fig. 4-style acceptance bound: on a synthetic catalog of
  // unit-scale embeddings, quantizing to 8 bits per dimension must keep
  // the exact nearest neighbor at rank 1 for >= 99% of queries.
  Rng rng(114);
  const int64_t n = 2000, dim = 64, num_queries = 500;
  const auto data = RandomVec(&rng, n * dim);
  FlatIndex flat(dim);
  flat.Add(data.data(), n);
  Sq8Index sq8(dim);
  ASSERT_TRUE(sq8.Train(data.data(), n).ok());
  ASSERT_TRUE(sq8.Add(data.data(), n).ok());

  int hits = 0;
  std::vector<float> query(dim);
  for (int64_t q = 0; q < num_queries; ++q) {
    // Queries near the data manifold (a stored row plus noise), as in the
    // paper's typo-lookup workload.
    const float* base = data.data() + (rng.Uniform(n)) * dim;
    for (int64_t d = 0; d < dim; ++d) {
      query[d] = base[d] + rng.UniformFloat(-0.05f, 0.05f);
    }
    const auto want = flat.Search(query.data(), 1);
    const auto got = sq8.Search(query.data(), 1);
    ASSERT_EQ(want.size(), 1u);
    ASSERT_EQ(got.size(), 1u);
    if (want[0].id == got[0].id) ++hits;
  }
  EXPECT_GE(hits, static_cast<int>(0.99 * num_queries))
      << "recall@1 = " << static_cast<double>(hits) / num_queries;
}

TEST(KernelDispatchTest, ForceArchRejectsUnsupported) {
  DispatchGuard guard;
#if !defined(__aarch64__)
  EXPECT_FALSE(k::ForceArch(k::Arch::kNeon));
#endif
#if !defined(__x86_64__)
  EXPECT_FALSE(k::ForceArch(k::Arch::kAvx2));
  EXPECT_FALSE(k::ForceArch(k::Arch::kAvx512));
#endif
  EXPECT_TRUE(k::ForceArch(k::Arch::kScalar));
  EXPECT_EQ(k::Dispatch().arch, k::Arch::kScalar);
}

TEST(KernelDispatchTest, Avx512AvailabilityIsConsistentWithCpuAndBuild) {
  // Table(kAvx512) must be non-null iff the build compiled the tier AND
  // the CPU has the F+BW+VL trio; forcing it when unavailable reports
  // false instead of crashing (the EMBLOOKUP_KERNELS=avx512 contract).
  DispatchGuard guard;
  const bool available = k::Table(k::Arch::kAvx512) != nullptr;
#if defined(__x86_64__)
  if (GetCpuFeatures().avx512) {
    // On an AVX-512 CPU the tier may still be absent from an old-compiler
    // build; when present it must be forceable.
    EXPECT_EQ(k::ForceArch(k::Arch::kAvx512), available);
    if (available) {
      EXPECT_EQ(k::Dispatch().arch, k::Arch::kAvx512);
    }
  } else {
    EXPECT_FALSE(available);
    EXPECT_FALSE(k::ForceArch(k::Arch::kAvx512));
  }
#else
  EXPECT_FALSE(available);
#endif
}

// --- TopK (the shared bounded heap) ----------------------------------------

TEST(TopKTest, KeepsKSmallestSortedWithIdTieBreak) {
  TopK top(3);
  top.Push(5, 2.0f);
  top.Push(1, 1.0f);
  top.Push(9, 1.0f);  // ties with id 1; larger id ranks after it
  top.Push(2, 3.0f);
  top.Push(7, 0.5f);
  const auto out = top.Finish();
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].id, 7);
  EXPECT_EQ(out[1].id, 1);
  EXPECT_EQ(out[2].id, 9);
}

TEST(TopKTest, EqualDistSmallerIdEvictsLargerId) {
  TopK top(1);
  top.Push(9, 1.0f);
  top.Push(3, 1.0f);  // same dist, smaller id: must win
  const auto out = top.Finish();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].id, 3);
}

TEST(TopKTest, WorstDistBoundsAdmission) {
  TopK top(2);
  EXPECT_EQ(top.WorstDist(), std::numeric_limits<float>::max());
  top.Push(0, 1.0f);
  top.Push(1, 2.0f);
  EXPECT_EQ(top.WorstDist(), 2.0f);
  top.Push(2, 1.5f);
  EXPECT_EQ(top.WorstDist(), 1.5f);
}

TEST(TopKTest, ResetReusesStorage) {
  TopK top(2);
  top.Push(0, 1.0f);
  top.Reset(1);
  top.Push(4, 9.0f);
  const auto out = top.Finish();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].id, 4);
}

}  // namespace
}  // namespace emblookup::ann
