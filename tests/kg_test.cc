#include <cstdio>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "kg/knowledge_graph.h"
#include "kg/name_factory.h"
#include "kg/noise.h"
#include "kg/synthetic_kg.h"
#include "kg/tabular.h"
#include "text/edit_distance.h"

namespace emblookup::kg {
namespace {

TEST(KnowledgeGraphTest, AddAndFetchEntity) {
  KnowledgeGraph kg;
  const EntityId id = kg.AddEntity("Germany", "Q183");
  EXPECT_EQ(kg.num_entities(), 1);
  EXPECT_EQ(kg.entity(id).label, "Germany");
  EXPECT_EQ(kg.entity(id).qid, "Q183");
}

TEST(KnowledgeGraphTest, AutoQidWhenOmitted) {
  KnowledgeGraph kg;
  const EntityId id = kg.AddEntity("Berlin");
  EXPECT_EQ(kg.entity(id).qid, "Q0");
}

TEST(KnowledgeGraphTest, AliasDeduplicated) {
  KnowledgeGraph kg;
  const EntityId id = kg.AddEntity("Germany");
  kg.AddAlias(id, "Deutschland");
  kg.AddAlias(id, "Deutschland");
  kg.AddAlias(id, "Germany");  // Same as label: ignored.
  EXPECT_EQ(kg.entity(id).aliases.size(), 1u);
}

TEST(KnowledgeGraphTest, TypesRegisteredOnce) {
  KnowledgeGraph kg;
  const TypeId a = kg.AddType("country");
  const TypeId b = kg.AddType("country");
  EXPECT_EQ(a, b);
  EXPECT_EQ(kg.num_types(), 1);
  EXPECT_EQ(kg.TypeName(a), "country");
  EXPECT_EQ(kg.FindType("city"), kInvalidType);
}

TEST(KnowledgeGraphTest, EntitiesOfTypeTracksMembership) {
  KnowledgeGraph kg;
  const TypeId country = kg.AddType("country");
  const EntityId g = kg.AddEntity("Germany");
  const EntityId f = kg.AddEntity("France");
  kg.AddEntityType(g, country);
  kg.AddEntityType(f, country);
  kg.AddEntityType(f, country);  // Duplicate ignored.
  EXPECT_EQ(kg.EntitiesOfType(country).size(), 2u);
  EXPECT_EQ(kg.entity(f).types.size(), 1u);
}

TEST(KnowledgeGraphTest, MentionIndexCoversLabelAndAliases) {
  KnowledgeGraph kg;
  const EntityId id = kg.AddEntity("Germany");
  kg.AddAlias(id, "Deutschland");
  EXPECT_EQ(kg.EntitiesByMention("germany").size(), 1u);
  EXPECT_EQ(kg.EntitiesByMention("  DEUTSCHLAND ").size(), 1u);
  EXPECT_TRUE(kg.EntitiesByMention("france").empty());
}

TEST(KnowledgeGraphTest, SharedMentionMapsToMultipleEntities) {
  KnowledgeGraph kg;
  kg.AddEntity("Berlin");
  kg.AddEntity("Berlin");
  EXPECT_EQ(kg.EntitiesByMention("berlin").size(), 2u);
}

TEST(KnowledgeGraphTest, FactsAndObjectOf) {
  KnowledgeGraph kg;
  const PropertyId cap = kg.AddProperty("capital");
  const EntityId g = kg.AddEntity("Germany");
  const EntityId b = kg.AddEntity("Berlin");
  kg.AddFact(g, cap, b);
  kg.AddLiteralFact(g, kg.AddProperty("population"), "83000000");
  EXPECT_EQ(kg.num_facts(), 2);
  EXPECT_EQ(kg.ObjectOf(g, cap), b);
  EXPECT_EQ(kg.ObjectOf(b, cap), kInvalidEntity);
  EXPECT_TRUE(kg.Related(g, b));
  EXPECT_TRUE(kg.Related(b, g));  // Either direction.
}

TEST(KnowledgeGraphTest, TsvRoundTrip) {
  KnowledgeGraph kg;
  const TypeId country = kg.AddType("country");
  const PropertyId cap = kg.AddProperty("capital");
  const EntityId g = kg.AddEntity("Germany", "Q183");
  const EntityId b = kg.AddEntity("Berlin", "Q64");
  kg.AddEntityType(g, country);
  kg.AddAlias(g, "Deutschland");
  kg.AddFact(g, cap, b);
  kg.AddLiteralFact(b, kg.AddProperty("population"), "3600000");

  const std::string path = ::testing::TempDir() + "/kg_roundtrip.tsv";
  ASSERT_TRUE(kg.SaveTsv(path).ok());
  auto loaded = KnowledgeGraph::LoadTsv(path);
  ASSERT_TRUE(loaded.ok());
  const KnowledgeGraph& kg2 = loaded.value();
  EXPECT_EQ(kg2.num_entities(), 2);
  EXPECT_EQ(kg2.entity(0).label, "Germany");
  EXPECT_EQ(kg2.entity(0).aliases.size(), 1u);
  EXPECT_EQ(kg2.entity(0).types.size(), 1u);
  EXPECT_EQ(kg2.num_facts(), 2);
  EXPECT_EQ(kg2.ObjectOf(0, kg2.FindProperty("capital")), 1);
  std::remove(path.c_str());
}

TEST(KnowledgeGraphTest, LoadRejectsGarbage) {
  const std::string path = ::testing::TempDir() + "/kg_bad.tsv";
  FILE* f = std::fopen(path.c_str(), "w");
  std::fputs("no header here\n", f);
  std::fclose(f);
  EXPECT_FALSE(KnowledgeGraph::LoadTsv(path).ok());
  std::remove(path.c_str());
}

// --- NameFactory ---------------------------------------------------------------

TEST(NameFactoryTest, TranslationIsConsistent) {
  NameFactory names(1);
  const std::string w = names.Word(2, 3);
  EXPECT_EQ(names.Translate(w), names.Translate(w));
  EXPECT_NE(names.Translate(w), w);
}

TEST(NameFactoryTest, TranslationIndependentOfRequestOrder) {
  NameFactory a(1), b(2);
  EXPECT_EQ(a.Translate("germany"), b.Translate("germany"));
}

TEST(NameFactoryTest, AcronymSkipsStopWords) {
  EXPECT_EQ(NameFactory::Acronym("university of berlin"), "UB");
  EXPECT_EQ(NameFactory::Acronym("european union"), "EU");
}

TEST(NameFactoryTest, CapitalizeFirstLetter) {
  EXPECT_EQ(NameFactory::Capitalize("berlin"), "Berlin");
  EXPECT_EQ(NameFactory::Capitalize(""), "");
}

// --- Synthetic KG -----------------------------------------------------------------

class SyntheticKgTest : public ::testing::Test {
 protected:
  static const KnowledgeGraph& Graph() {
    static const KnowledgeGraph& kg = [] {
      SyntheticKgOptions options;
      options.num_entities = 1000;
      options.seed = 99;
      return *new KnowledgeGraph(GenerateSyntheticKg(options));
    }();
    return kg;
  }
};

TEST_F(SyntheticKgTest, EntityCountMatches) {
  EXPECT_EQ(Graph().num_entities(), 1000);
}

TEST_F(SyntheticKgTest, AllSixTypesPopulated) {
  for (const char* type :
       {SyntheticSchema::kCountry, SyntheticSchema::kCity,
        SyntheticSchema::kPerson, SyntheticSchema::kOrganization,
        SyntheticSchema::kFilm, SyntheticSchema::kSpecies}) {
    const TypeId t = Graph().FindType(type);
    ASSERT_NE(t, kInvalidType) << type;
    EXPECT_FALSE(Graph().EntitiesOfType(t).empty()) << type;
  }
}

TEST_F(SyntheticKgTest, MostEntitiesHaveMultipleAliases) {
  int64_t with3 = 0;
  for (EntityId e = 0; e < Graph().num_entities(); ++e) {
    if (Graph().entity(e).aliases.size() >= 2) ++with3;
  }
  // §IV-D: "for the vast majority of the entities, there were at least 3
  // aliases" — our generator guarantees >= 2 for essentially all.
  EXPECT_GT(with3, Graph().num_entities() * 9 / 10);
}

TEST_F(SyntheticKgTest, EveryEntityHasAType) {
  for (EntityId e = 0; e < Graph().num_entities(); ++e) {
    EXPECT_FALSE(Graph().entity(e).types.empty());
  }
}

TEST_F(SyntheticKgTest, CitiesHaveLocatedInFacts) {
  const TypeId city = Graph().FindType(SyntheticSchema::kCity);
  const PropertyId located = Graph().FindProperty(SyntheticSchema::kLocatedIn);
  int64_t with_fact = 0;
  for (EntityId e : Graph().EntitiesOfType(city)) {
    if (Graph().ObjectOf(e, located) != kInvalidEntity) ++with_fact;
  }
  EXPECT_EQ(with_fact,
            static_cast<int64_t>(Graph().EntitiesOfType(city).size()));
}

TEST_F(SyntheticKgTest, DeterministicForSeed) {
  SyntheticKgOptions options;
  options.num_entities = 200;
  options.seed = 7;
  const KnowledgeGraph a = GenerateSyntheticKg(options);
  const KnowledgeGraph b = GenerateSyntheticKg(options);
  ASSERT_EQ(a.num_entities(), b.num_entities());
  for (EntityId e = 0; e < a.num_entities(); ++e) {
    EXPECT_EQ(a.entity(e).label, b.entity(e).label);
  }
}

// --- Noise -------------------------------------------------------------------------

class NoiseKindTest : public ::testing::TestWithParam<NoiseKind> {};

TEST_P(NoiseKindTest, ProducesBoundedEdit) {
  Rng rng(42);
  const std::string base = "federal republic of germany";
  for (int i = 0; i < 50; ++i) {
    const std::string noisy = ApplyNoise(base, GetParam(), &rng);
    // Every single perturbation stays within a small Damerau distance of
    // the base (token swap moves a whole token, hence the loose bound).
    EXPECT_LE(text::DamerauLevenshtein(base, noisy), 16);
    EXPECT_FALSE(noisy.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, NoiseKindTest,
    ::testing::Values(NoiseKind::kDropChar, NoiseKind::kInsertChar,
                      NoiseKind::kSubstituteChar, NoiseKind::kTransposeChars,
                      NoiseKind::kDuplicateChar, NoiseKind::kSwapTokens,
                      NoiseKind::kAbbreviateToken));

TEST(NoiseTest, DropShortens) {
  Rng rng(1);
  EXPECT_EQ(ApplyNoise("ab", NoiseKind::kDropChar, &rng).size(), 1u);
}

TEST(NoiseTest, InsertLengthens) {
  Rng rng(2);
  EXPECT_EQ(ApplyNoise("abc", NoiseKind::kInsertChar, &rng).size(), 4u);
}

TEST(NoiseTest, TransposeIsDamerauOne) {
  Rng rng(3);
  for (int i = 0; i < 20; ++i) {
    const std::string noisy =
        ApplyNoise("germany", NoiseKind::kTransposeChars, &rng);
    EXPECT_LE(text::DamerauLevenshtein("germany", noisy), 1);
  }
}

TEST(NoiseTest, SwapTokensPreservesTokenMultiset) {
  Rng rng(4);
  const std::string noisy =
      ApplyNoise("bill gates", NoiseKind::kSwapTokens, &rng);
  EXPECT_EQ(noisy, "gates bill");
}

TEST(NoiseTest, AbbreviateKeepsInitial) {
  Rng rng(5);
  const std::string noisy =
      ApplyNoise("gates", NoiseKind::kAbbreviateToken, &rng);
  EXPECT_EQ(noisy, "g.");
}

TEST(NoiseTest, RandomTypoRespectsEditBudget) {
  Rng rng(6);
  for (int i = 0; i < 100; ++i) {
    const std::string noisy = RandomTypo("knowledge graph", &rng, 2);
    EXPECT_LE(text::DamerauLevenshtein("knowledge graph", noisy), 4);
  }
}

// --- Tabular datasets -------------------------------------------------------------

class TabularTest : public ::testing::Test {
 protected:
  static const KnowledgeGraph& Graph() {
    static const KnowledgeGraph& kg = [] {
      SyntheticKgOptions options;
      options.num_entities = 1500;
      options.seed = 5;
      return *new KnowledgeGraph(GenerateSyntheticKg(options));
    }();
    return kg;
  }
};

TEST_F(TabularTest, ProfileShapesRespected) {
  Rng rng(10);
  const DatasetProfile profile = DatasetProfile::StWikidataLike(0.2);
  const TabularDataset ds = GenerateDataset(Graph(), profile, &rng);
  EXPECT_EQ(ds.NumTables(), profile.num_tables);
  for (const Table& t : ds.tables) {
    EXPECT_GE(t.num_rows(), profile.min_rows);
    EXPECT_LE(t.num_rows(), profile.max_rows);
    EXPECT_GE(t.num_cols(), profile.min_entity_cols);
  }
}

TEST_F(TabularTest, GroundTruthConsistent) {
  Rng rng(11);
  const TabularDataset ds =
      GenerateDataset(Graph(), DatasetProfile::StWikidataLike(0.1), &rng);
  for (const Table& t : ds.tables) {
    for (const auto& row : t.rows) {
      ASSERT_EQ(static_cast<int64_t>(row.size()), t.num_cols());
      for (size_t c = 0; c < row.size(); ++c) {
        if (t.columns[c].is_literal) {
          EXPECT_EQ(row[c].gt_entity, kInvalidEntity);
        } else {
          ASSERT_NE(row[c].gt_entity, kInvalidEntity);
          // The gt entity carries the column's type.
          const auto& types = Graph().entity(row[c].gt_entity).types;
          EXPECT_TRUE(std::find(types.begin(), types.end(),
                                t.columns[c].gt_type) != types.end());
        }
      }
    }
  }
}

TEST_F(TabularTest, CleanProfileCellsMostlyMatchLabels) {
  Rng rng(12);
  DatasetProfile profile = DatasetProfile::StWikidataLike(0.1);
  profile.alias_cell_rate = 0.0;
  profile.typo_cell_rate = 0.0;
  const TabularDataset ds = GenerateDataset(Graph(), profile, &rng);
  for (const Table& t : ds.tables) {
    for (const auto& row : t.rows) {
      for (const Cell& cell : row) {
        if (cell.gt_entity == kInvalidEntity) continue;
        EXPECT_EQ(cell.text, Graph().entity(cell.gt_entity).label);
      }
    }
  }
}

TEST_F(TabularTest, StatsHelpers) {
  Rng rng(13);
  const TabularDataset ds =
      GenerateDataset(Graph(), DatasetProfile::StDbpediaLike(0.1), &rng);
  EXPECT_GT(ds.AvgRows(), 0.0);
  EXPECT_GT(ds.AvgCols(), 0.0);
  EXPECT_GT(ds.NumAnnotatedCells(), 0);
}

TEST_F(TabularTest, InjectCellNoiseTouchesRequestedFraction) {
  Rng rng(14);
  TabularDataset ds =
      GenerateDataset(Graph(), DatasetProfile::StWikidataLike(0.2), &rng);
  const int64_t annotated = ds.NumAnnotatedCells();
  Rng noise_rng(15);
  const int64_t touched = InjectCellNoise(&ds, 0.10, &noise_rng);
  EXPECT_GT(touched, annotated / 20);
  EXPECT_LT(touched, annotated / 5);
}

TEST_F(TabularTest, SubstituteAliasesChangesText) {
  Rng rng(16);
  DatasetProfile profile = DatasetProfile::StWikidataLike(0.1);
  profile.alias_cell_rate = 0.0;
  profile.typo_cell_rate = 0.0;
  TabularDataset ds = GenerateDataset(Graph(), profile, &rng);
  Rng alias_rng(17);
  const int64_t replaced = SubstituteAliases(&ds, Graph(), &alias_rng);
  EXPECT_GT(replaced, 0);
  // Replaced cells now show an alias of the gold entity.
  int64_t verified = 0;
  for (const Table& t : ds.tables) {
    for (const auto& row : t.rows) {
      for (const Cell& cell : row) {
        if (cell.gt_entity == kInvalidEntity) continue;
        const Entity& e = Graph().entity(cell.gt_entity);
        if (cell.text == e.label) continue;
        EXPECT_TRUE(std::find(e.aliases.begin(), e.aliases.end(),
                              cell.text) != e.aliases.end());
        ++verified;
      }
    }
  }
  EXPECT_GT(verified, 0);
}

TEST_F(TabularTest, BlankCellsEmptiesTextKeepsGold) {
  Rng rng(18);
  TabularDataset ds =
      GenerateDataset(Graph(), DatasetProfile::StWikidataLike(0.1), &rng);
  Rng blank_rng(19);
  const int64_t blanked = BlankCells(&ds, 0.10, &blank_rng);
  EXPECT_GT(blanked, 0);
  int64_t found = 0;
  for (const Table& t : ds.tables) {
    for (const auto& row : t.rows) {
      for (const Cell& cell : row) {
        if (cell.text.empty() && cell.gt_entity != kInvalidEntity) ++found;
      }
    }
  }
  EXPECT_EQ(found, blanked);
}

}  // namespace
}  // namespace emblookup::kg
