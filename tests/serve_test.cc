// Tests for the src/serve subsystem: micro-batching flush rules, query
// cache semantics, admission control, per-request deadlines, clean
// shutdown with queued work, and RCU-style index swap under load.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "apps/lookup_service.h"
#include "common/logging.h"
#include "core/emblookup.h"
#include "kg/synthetic_kg.h"
#include "serve/lookup_server.h"
#include "serve/metrics.h"
#include "serve/query_cache.h"

namespace emblookup::serve {
namespace {

using std::chrono::microseconds;
using std::chrono::milliseconds;

/// Manually opened latch used to hold a fake backend inside BulkLookup.
class Gate {
 public:
  void Open() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      open_ = true;
    }
    cv_.notify_all();
  }
  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return open_; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool open_ = false;
};

/// Deterministic backend: entity ids derived from the query text, batch
/// sizes recorded, optional gate blocking every BulkLookup call.
class FakeService : public apps::LookupService {
 public:
  std::string name() const override { return "fake"; }

  std::vector<kg::EntityId> Lookup(const std::string& query,
                                   int64_t k) override {
    std::vector<kg::EntityId> ids;
    kg::EntityId base = 0;
    for (char c : query) base = base * 31 + static_cast<unsigned char>(c);
    for (int64_t i = 0; i < k; ++i) ids.push_back((base + i) % 100000);
    return ids;
  }

  std::vector<std::vector<kg::EntityId>> BulkLookup(
      const std::vector<std::string>& queries, int64_t k) override {
    {
      std::lock_guard<std::mutex> lock(mu_);
      batch_sizes_.push_back(queries.size());
    }
    ++batches_started_;
    if (gate_ != nullptr) gate_->Wait();
    std::vector<std::vector<kg::EntityId>> out;
    out.reserve(queries.size());
    for (const auto& q : queries) out.push_back(Lookup(q, k));
    return out;
  }

  std::vector<size_t> batch_sizes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return batch_sizes_;
  }
  int batches_started() const { return batches_started_.load(); }
  void set_gate(Gate* gate) { gate_ = gate; }

 private:
  mutable std::mutex mu_;
  std::vector<size_t> batch_sizes_;
  std::atomic<int> batches_started_{0};
  Gate* gate_ = nullptr;
};

// --- Micro-batching ----------------------------------------------------------

TEST(LookupServerTest, FlushesOnMaxBatch) {
  FakeService backend;
  ServerOptions options;
  options.max_batch = 8;
  options.max_delay = std::chrono::duration_cast<microseconds>(
      std::chrono::seconds(10));  // Effectively: flush on size only.
  options.enable_cache = false;
  LookupServer server(&backend, options);

  std::vector<std::future<Result<LookupResponse>>> futures;
  for (int i = 0; i < 16; ++i) {
    futures.push_back(server.Submit("query-" + std::to_string(i), 5));
  }
  for (auto& f : futures) {
    auto result = f.get();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result.value().ids.size(), 5u);
  }
  // With a 10 s delay window the only flush trigger is max_batch.
  for (size_t size : backend.batch_sizes()) EXPECT_EQ(size, 8u);
  EXPECT_EQ(backend.batch_sizes().size(), 2u);
}

TEST(LookupServerTest, FlushesOnMaxDelay) {
  FakeService backend;
  ServerOptions options;
  options.max_batch = 1000;  // Never reached: only the delay can flush.
  options.max_delay = microseconds(3000);
  options.enable_cache = false;
  LookupServer server(&backend, options);

  auto f0 = server.Submit("alpha", 3);
  auto f1 = server.Submit("beta", 3);
  auto f2 = server.Submit("gamma", 3);
  EXPECT_TRUE(f0.get().ok());
  EXPECT_TRUE(f1.get().ok());
  EXPECT_TRUE(f2.get().ok());
  size_t total = 0;
  for (size_t size : backend.batch_sizes()) total += size;
  EXPECT_EQ(total, 3u);
}

// --- Query cache -------------------------------------------------------------

TEST(LookupServerTest, CacheHitMatchesUncachedResult) {
  FakeService backend;
  ServerOptions options;
  options.max_batch = 1;
  options.max_delay = microseconds(100);
  LookupServer server(&backend, options);

  auto first = server.LookupSync("Berlin", 7);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first.value().from_cache);
  EXPECT_EQ(first.value().ids, backend.Lookup("Berlin", 7));

  auto second = server.LookupSync("Berlin", 7);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second.value().from_cache);
  EXPECT_EQ(second.value().ids, first.value().ids);

  // Normalization folds casing and whitespace into the same key.
  auto folded = server.LookupSync("  BERLIN ", 7);
  ASSERT_TRUE(folded.ok());
  EXPECT_TRUE(folded.value().from_cache);
  EXPECT_EQ(folded.value().ids, first.value().ids);

  // Different k is a different cache entry.
  auto other_k = server.LookupSync("Berlin", 3);
  ASSERT_TRUE(other_k.ok());
  EXPECT_FALSE(other_k.value().from_cache);
  EXPECT_EQ(other_k.value().ids.size(), 3u);

  const MetricsSnapshot snap = server.Metrics();
  EXPECT_EQ(snap.cache_hits, 2u);
  EXPECT_EQ(snap.cache_misses, 2u);
}

TEST(QueryCacheTest, LruEvictionAndByteAccounting) {
  QueryCacheOptions options;
  options.num_shards = 1;
  options.max_entries = 2;
  QueryCache cache(options);

  cache.Put("a", 5, 0, {1, 2});
  cache.Put("b", 5, 0, {3});
  std::vector<kg::EntityId> out;
  ASSERT_TRUE(cache.Get("a", 5, 0, &out));  // Promotes "a"; "b" is now LRU.
  cache.Put("c", 5, 0, {4});

  EXPECT_TRUE(cache.Get("a", 5, 0, &out));
  EXPECT_EQ(out, (std::vector<kg::EntityId>{1, 2}));
  EXPECT_FALSE(cache.Get("b", 5, 0, &out));
  EXPECT_TRUE(cache.Get("c", 5, 0, &out));

  const QueryCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_GT(stats.bytes, 0u);

  cache.Clear();
  EXPECT_EQ(cache.Stats().entries, 0u);
  EXPECT_EQ(cache.Stats().bytes, 0u);
}

TEST(QueryCacheTest, ByteBudgetEvicts) {
  QueryCacheOptions options;
  options.num_shards = 1;
  options.max_entries = 1000;
  options.max_bytes = 300;  // A couple of small entries at most.
  QueryCache cache(options);
  for (int i = 0; i < 16; ++i) {
    cache.Put("query-" + std::to_string(i), 10, 0,
              std::vector<kg::EntityId>(10, i));
  }
  const QueryCacheStats stats = cache.Stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LE(stats.bytes, 300u);
}

// --- Admission control & deadlines -------------------------------------------

TEST(LookupServerTest, AdmissionControlShedsWhenQueueFull) {
  Gate gate;
  FakeService backend;
  backend.set_gate(&gate);
  ServerOptions options;
  options.max_batch = 1;
  options.max_delay = microseconds(100);
  options.max_queue_depth = 2;
  options.enable_cache = false;
  LookupServer server(&backend, options);

  auto blocked = server.Submit("block", 3);
  // Wait until the dispatcher has popped "block" and parked in the backend,
  // so the queue is empty and depth accounting below is exact.
  while (backend.batches_started() == 0) {
    std::this_thread::sleep_for(milliseconds(1));
  }
  auto q1 = server.Submit("one", 3);
  auto q2 = server.Submit("two", 3);
  auto shed = server.Submit("three", 3);
  ASSERT_EQ(shed.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  const auto shed_result = shed.get();
  EXPECT_FALSE(shed_result.ok());
  EXPECT_EQ(shed_result.status().code(), StatusCode::kUnavailable);

  gate.Open();
  EXPECT_TRUE(blocked.get().ok());
  EXPECT_TRUE(q1.get().ok());
  EXPECT_TRUE(q2.get().ok());
  EXPECT_EQ(server.Metrics().requests_shed, 1u);
}

TEST(LookupServerTest, QueuedDeadlineExpires) {
  Gate gate;
  FakeService backend;
  backend.set_gate(&gate);
  ServerOptions options;
  options.max_batch = 1;
  options.max_delay = microseconds(100);
  options.enable_cache = false;
  LookupServer server(&backend, options);

  auto blocked = server.Submit("block", 3);
  while (backend.batches_started() == 0) {
    std::this_thread::sleep_for(milliseconds(1));
  }
  auto doomed = server.Submit("late", 3, microseconds(1000));
  std::this_thread::sleep_for(milliseconds(10));  // Let the deadline pass.
  gate.Open();

  EXPECT_TRUE(blocked.get().ok());
  const auto result = doomed.get();
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(server.Metrics().requests_expired, 1u);
}

// --- Shutdown ----------------------------------------------------------------

TEST(LookupServerTest, ShutdownDrainsQueuedWork) {
  Gate gate;
  FakeService backend;
  backend.set_gate(&gate);
  ServerOptions options;
  options.max_batch = 2;
  options.max_delay = microseconds(100);
  options.enable_cache = false;
  auto server = std::make_unique<LookupServer>(&backend, options);

  std::vector<std::future<Result<LookupResponse>>> futures;
  for (int i = 0; i < 5; ++i) {
    futures.push_back(server->Submit("drain-" + std::to_string(i), 4));
  }
  gate.Open();
  server->Shutdown();  // Must complete the three still-queued requests.
  for (auto& f : futures) {
    auto result = f.get();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result.value().ids.size(), 4u);
  }
  // Submits after shutdown fail fast.
  auto late = server->Submit("late", 4);
  EXPECT_EQ(late.get().status().code(), StatusCode::kUnavailable);
  server.reset();  // Double shutdown via destructor is a no-op.
}

TEST(LookupServerTest, NonDrainShutdownFailsQueuedWork) {
  Gate gate;
  FakeService backend;
  backend.set_gate(&gate);
  ServerOptions options;
  options.max_batch = 1;
  options.max_delay = microseconds(100);
  options.enable_cache = false;
  options.drain_on_shutdown = false;
  LookupServer server(&backend, options);

  auto executing = server.Submit("block", 3);
  while (backend.batches_started() == 0) {
    std::this_thread::sleep_for(milliseconds(1));
  }
  auto queued = server.Submit("queued", 3);

  std::thread shutdown([&server] { server.Shutdown(); });
  // Shutdown is committed once new submits fail fast; only then release
  // the backend so the dispatcher observes stop_ before draining "queued".
  while (true) {
    auto probe = server.Submit("probe", 3);
    if (probe.wait_for(std::chrono::seconds(0)) ==
        std::future_status::ready) {
      EXPECT_EQ(probe.get().status().code(), StatusCode::kUnavailable);
      break;
    }
    std::this_thread::sleep_for(milliseconds(1));
  }
  gate.Open();
  shutdown.join();

  EXPECT_TRUE(executing.get().ok());  // In-flight work still completes.
  EXPECT_EQ(queued.get().status().code(), StatusCode::kUnavailable);
}

// --- Metrics -----------------------------------------------------------------

TEST(MetricsTest, HistogramPercentilesAndText) {
  Histogram h(Histogram::ExponentialBuckets(1.0, 2.0, 12));
  for (int i = 1; i <= 1000; ++i) h.Record(static_cast<double>(i));
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.total, 1000u);
  EXPECT_NEAR(snap.Mean(), 500.5, 1e-6);
  // Bucket interpolation: coarse, but the medians land in the right decade.
  EXPECT_GT(snap.Percentile(0.5), 250.0);
  EXPECT_LT(snap.Percentile(0.5), 1000.0);
  EXPECT_GE(snap.Percentile(0.99), snap.Percentile(0.5));

  Metrics metrics;
  metrics.OnSubmitted();
  metrics.OnBatch(4);
  const std::string text = metrics.Snapshot().ToText();
  EXPECT_NE(text.find("requests_submitted"), std::string::npos);
  EXPECT_NE(text.find("batch_size"), std::string::npos);
}

// --- End-to-end with a real EmbLookup: swap under load -----------------------

const kg::KnowledgeGraph& ServeKg() {
  static const kg::KnowledgeGraph graph = [] {
    kg::SyntheticKgOptions options;
    options.num_entities = 150;
    options.seed = 1723;
    return kg::GenerateSyntheticKg(options);
  }();
  return graph;
}

core::EmbLookup* ServeModel() {
  static const std::unique_ptr<core::EmbLookup> el = [] {
    core::EmbLookupOptions options;
    options.miner.triplets_per_entity = 4;
    options.trainer.epochs = 2;
    options.fasttext.epochs = 2;
    options.index.compress = false;
    options.num_threads = 2;
    auto built = core::EmbLookup::TrainFromKg(ServeKg(), options);
    EL_CHECK(built.ok());
    return std::move(built).ValueOrDie();
  }();
  return el.get();
}

TEST(LookupServerEndToEndTest, ServedResultsMatchDirectLookupAndCache) {
  ServerOptions options;
  options.max_batch = 4;
  options.max_delay = microseconds(500);
  options.parallel_backend = false;
  LookupServer server(ServeModel(), options);

  const std::string query = ServeKg().entity(3).label;
  std::vector<kg::EntityId> direct;
  for (const auto& r : ServeModel()->Lookup(query, 5)) {
    direct.push_back(r.entity);
  }
  auto served = server.LookupSync(query, 5);
  ASSERT_TRUE(served.ok());
  EXPECT_EQ(served.value().ids, direct);

  auto cached = server.LookupSync(query, 5);
  ASSERT_TRUE(cached.ok());
  EXPECT_TRUE(cached.value().from_cache);
  EXPECT_EQ(cached.value().ids, direct);
}

TEST(LookupServerEndToEndTest, SwapIndexUnderSustainedLoad) {
  ServerOptions options;
  options.max_batch = 4;
  options.max_delay = microseconds(200);
  options.parallel_backend = false;
  LookupServer server(ServeModel(), options);

  std::atomic<int> failures{0};
  std::atomic<int> empties{0};
  std::atomic<bool> done{false};
  std::thread client([&] {
    int i = 0;
    while (!done.load() || i < 200) {
      const auto& entity = ServeKg().entity(i % ServeKg().num_entities());
      auto result = server.LookupSync(entity.label, 5);
      if (!result.ok()) {
        failures.fetch_add(1);
      } else if (result.value().ids.empty()) {
        empties.fetch_add(1);
      }
      ++i;
      if (i >= 5000) break;  // Safety valve; never hit in practice.
    }
  });

  // Three online rebuilds under load: flat -> IVF-flat -> flat.
  for (int swap = 0; swap < 3; ++swap) {
    core::IndexConfig config;
    config.compress = false;
    config.kind = swap % 2 == 0 ? core::IndexKind::kIvfFlat
                                : core::IndexKind::kFlat;
    config.ivf_lists = 8;
    config.ivf_nprobe = 8;
    const Status status = server.SwapIndex(config);
    ASSERT_TRUE(status.ok()) << status.ToString();
  }
  done.store(true);
  client.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(empties.load(), 0);
  const MetricsSnapshot snap = server.Metrics();
  EXPECT_EQ(snap.index_swaps, 3u);
  EXPECT_EQ(snap.requests_completed, snap.requests_submitted);
  // The last installed snapshot is live.
  EXPECT_EQ(ServeModel()->index().kind(), core::IndexKind::kIvfFlat);
}

TEST(LookupServerEndToEndTest, SwapWithoutEmbLookupIsRejected) {
  FakeService backend;
  LookupServer server(&backend, ServerOptions());
  const Status status = server.SwapIndex(core::IndexConfig());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

// --- SubmitAsync (callback flavor used by the src/net front end) -------------

TEST(LookupServerTest, SubmitAsyncDeliversSameResultAsSync) {
  FakeService backend;
  LookupServer server(&backend);
  std::promise<Result<LookupResponse>> delivered;
  server.SubmitAsync("async-query", 5, microseconds::zero(),
                     [&delivered](Result<LookupResponse> result) {
                       delivered.set_value(std::move(result));
                     });
  auto async_result = delivered.get_future().get();
  ASSERT_TRUE(async_result.ok()) << async_result.status().ToString();
  auto sync_result = server.LookupSync("async-query", 5);
  ASSERT_TRUE(sync_result.ok());
  EXPECT_EQ(async_result.value().ids, sync_result.value().ids);
  EXPECT_EQ(async_result.value().ids, backend.Lookup("async-query", 5));
}

TEST(LookupServerTest, SubmitAsyncInvalidKFailsInline) {
  FakeService backend;
  LookupServer server(&backend);
  bool called = false;
  server.SubmitAsync("q", 0, microseconds::zero(),
                     [&called](Result<LookupResponse> result) {
                       called = true;
                       EXPECT_EQ(result.status().code(),
                                 StatusCode::kInvalidArgument);
                     });
  // Immediate failures run the callback inline on the submitting thread.
  EXPECT_TRUE(called);
}

TEST(LookupServerTest, SubmitAsyncShedsWhenQueueFull) {
  Gate gate;
  FakeService backend;
  backend.set_gate(&gate);
  ServerOptions options;
  options.max_batch = 1;
  options.max_delay = microseconds(100);
  options.max_queue_depth = 1;
  options.enable_cache = false;
  LookupServer server(&backend, options);

  auto blocked = server.Submit("block", 3);
  while (backend.batches_started() == 0) {
    std::this_thread::sleep_for(milliseconds(1));
  }
  auto queued = server.Submit("queued", 3);
  bool shed_inline = false;
  server.SubmitAsync("shed", 3, microseconds::zero(),
                     [&shed_inline](Result<LookupResponse> result) {
                       shed_inline = true;
                       EXPECT_EQ(result.status().code(),
                                 StatusCode::kUnavailable);
                     });
  EXPECT_TRUE(shed_inline);
  gate.Open();
  EXPECT_TRUE(blocked.get().ok());
  EXPECT_TRUE(queued.get().ok());
}

TEST(LookupServerTest, SubmitAsyncAfterShutdownFailsUnavailable) {
  FakeService backend;
  LookupServer server(&backend);
  server.Shutdown();
  bool called = false;
  server.SubmitAsync("late", 3, microseconds::zero(),
                     [&called](Result<LookupResponse> result) {
                       called = true;
                       EXPECT_EQ(result.status().code(),
                                 StatusCode::kUnavailable);
                     });
  EXPECT_TRUE(called);
}

}  // namespace
}  // namespace emblookup::serve
