#include <cmath>
#include <sstream>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "tensor/nn.h"
#include "tensor/ops.h"
#include "tensor/optim.h"
#include "tensor/serialize.h"
#include "tensor/tensor.h"
#include "tests/gradcheck.h"

namespace emblookup::tensor {
namespace {

TEST(TensorTest, ZerosAndShape) {
  Tensor t = Tensor::Zeros({2, 3});
  EXPECT_EQ(t.size(), 6);
  EXPECT_EQ(t.ndim(), 2);
  EXPECT_EQ(t.dim(0), 2);
  EXPECT_EQ(t.dim(1), 3);
  for (int64_t i = 0; i < t.size(); ++i) EXPECT_EQ(t.data()[i], 0.0f);
}

TEST(TensorTest, FromDataAndItem) {
  Tensor t = Tensor::FromData({3}, {1.0f, 2.0f, 3.0f});
  EXPECT_EQ(t.item(), 1.0f);
  EXPECT_EQ(t.data()[2], 3.0f);
}

TEST(TensorTest, FullFillsValue) {
  Tensor t = Tensor::Full({2, 2}, 7.5f);
  for (int64_t i = 0; i < 4; ++i) EXPECT_EQ(t.data()[i], 7.5f);
}

TEST(TensorTest, CloneIsDeep) {
  Tensor a = Tensor::FromData({2}, {1.0f, 2.0f});
  Tensor b = a.Clone();
  b.data()[0] = 99.0f;
  EXPECT_EQ(a.data()[0], 1.0f);
}

TEST(TensorTest, CopyAliasesStorage) {
  Tensor a = Tensor::FromData({2}, {1.0f, 2.0f});
  Tensor b = a;  // Handle copy.
  b.data()[0] = 99.0f;
  EXPECT_EQ(a.data()[0], 99.0f);
}

TEST(TensorTest, ReshapePreservesDataAndGradient) {
  Tensor a = Tensor::FromData({2, 3}, {1, 2, 3, 4, 5, 6}, true);
  Tensor r = a.Reshape({3, 2});
  EXPECT_EQ(r.dim(0), 3);
  EXPECT_EQ(r.data()[5], 6.0f);
  Tensor loss = Sum(Mul(r, r));
  loss.Backward();
  EXPECT_FLOAT_EQ(a.grad()[0], 2.0f);   // d(sum x^2)/dx = 2x.
  EXPECT_FLOAT_EQ(a.grad()[5], 12.0f);
}

TEST(TensorTest, BackwardThroughSharedNode) {
  // y = x + x should give dy/dx = 2.
  Tensor x = Tensor::FromData({1}, {3.0f}, true);
  Tensor y = Add(x, x);
  y.Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 2.0f);
}

TEST(TensorTest, NoGradGuardSuppressesTape) {
  Tensor x = Tensor::FromData({1}, {3.0f}, true);
  NoGradGuard guard;
  Tensor y = Mul(x, x);
  EXPECT_FALSE(y.requires_grad());
}

TEST(TensorTest, DetachBreaksTape) {
  Tensor x = Tensor::FromData({1}, {3.0f}, true);
  Tensor d = Mul(x, x).Detach();
  EXPECT_FALSE(d.requires_grad());
  EXPECT_FLOAT_EQ(d.item(), 9.0f);
}

TEST(TensorTest, ShapeToStringFormats) {
  EXPECT_EQ(ShapeToString({2, 3, 4}), "(2, 3, 4)");
  EXPECT_EQ(NumElements({2, 3, 4}), 24);
}

// ---------------------------------------------------------------------------
// Forward-value sanity checks.
// ---------------------------------------------------------------------------

TEST(OpsForwardTest, AddBroadcastBias) {
  Tensor a = Tensor::FromData({2, 2}, {1, 2, 3, 4});
  Tensor b = Tensor::FromData({2}, {10, 20});
  Tensor y = Add(a, b);
  EXPECT_FLOAT_EQ(y.data()[0], 11.0f);
  EXPECT_FLOAT_EQ(y.data()[3], 24.0f);
}

TEST(OpsForwardTest, MatMulValues) {
  Tensor a = Tensor::FromData({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromData({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor y = MatMul(a, b);
  EXPECT_FLOAT_EQ(y.data()[0], 58.0f);
  EXPECT_FLOAT_EQ(y.data()[3], 154.0f);
}

TEST(OpsForwardTest, TransposeValues) {
  Tensor a = Tensor::FromData({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor y = Transpose(a);
  EXPECT_EQ(y.dim(0), 3);
  EXPECT_FLOAT_EQ(y.data()[1], 4.0f);
}

TEST(OpsForwardTest, ReluClamps) {
  Tensor a = Tensor::FromData({3}, {-1.0f, 0.0f, 2.0f});
  Tensor y = Relu(a);
  EXPECT_FLOAT_EQ(y.data()[0], 0.0f);
  EXPECT_FLOAT_EQ(y.data()[2], 2.0f);
}

TEST(OpsForwardTest, SoftmaxRowsSumToOne) {
  Rng rng(1);
  Tensor a = RandomTensor({4, 7}, &rng);
  Tensor y = SoftmaxRows(a);
  for (int64_t i = 0; i < 4; ++i) {
    float sum = 0.0f;
    for (int64_t j = 0; j < 7; ++j) sum += y.data()[i * 7 + j];
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

TEST(OpsForwardTest, LogSoftmaxMatchesSoftmax) {
  Rng rng(2);
  Tensor a = RandomTensor({3, 5}, &rng);
  Tensor s = SoftmaxRows(a);
  Tensor ls = LogSoftmaxRows(a);
  for (int64_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(std::log(s.data()[i]), ls.data()[i], 1e-4f);
  }
}

TEST(OpsForwardTest, GlobalMaxPoolPicksMax) {
  Tensor a = Tensor::FromData({1, 2, 3}, {1, 5, 2, -1, -7, -2});
  Tensor y = GlobalMaxPool1d(a);
  EXPECT_FLOAT_EQ(y.data()[0], 5.0f);
  EXPECT_FLOAT_EQ(y.data()[1], -1.0f);
}

TEST(OpsForwardTest, MaxPool1dHalvesLength) {
  Tensor a = Tensor::FromData({1, 1, 4}, {1, 9, 3, 2});
  Tensor y = MaxPool1d(a, 2);
  EXPECT_EQ(y.dim(2), 2);
  EXPECT_FLOAT_EQ(y.data()[0], 9.0f);
  EXPECT_FLOAT_EQ(y.data()[1], 3.0f);
}

TEST(OpsForwardTest, Conv1dIdentityKernel) {
  // Kernel of size 1 with weight 1 reproduces the input channel.
  Tensor x = Tensor::FromData({1, 1, 4}, {1, 2, 3, 4});
  Tensor w = Tensor::FromData({1, 1, 1}, {1.0f});
  Tensor b = Tensor::Zeros({1});
  Tensor y = Conv1d(x, w, b, /*padding=*/0);
  for (int64_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(y.data()[i], x.data()[i]);
}

TEST(OpsForwardTest, Conv1dPaddingKeepsLength) {
  Tensor x = Tensor::FromData({1, 1, 4}, {1, 2, 3, 4});
  Tensor w = Tensor::FromData({1, 1, 3}, {1, 1, 1});
  Tensor b = Tensor::Zeros({1});
  Tensor y = Conv1d(x, w, b, /*padding=*/1);
  EXPECT_EQ(y.dim(2), 4);
  EXPECT_FLOAT_EQ(y.data()[0], 3.0f);   // 0+1+2.
  EXPECT_FLOAT_EQ(y.data()[1], 6.0f);   // 1+2+3.
  EXPECT_FLOAT_EQ(y.data()[3], 7.0f);   // 3+4+0.
}

TEST(OpsForwardTest, RowL2NormalizeUnitNorm) {
  Rng rng(3);
  Tensor a = RandomTensor({5, 8}, &rng);
  Tensor y = RowL2Normalize(a);
  for (int64_t i = 0; i < 5; ++i) {
    float sq = 0.0f;
    for (int64_t j = 0; j < 8; ++j) {
      sq += y.data()[i * 8 + j] * y.data()[i * 8 + j];
    }
    EXPECT_NEAR(sq, 1.0f, 1e-4f);
  }
}

TEST(OpsForwardTest, GatherRowsSelectsAndRepeats) {
  Tensor a = Tensor::FromData({3, 2}, {1, 2, 3, 4, 5, 6});
  Tensor y = GatherRows(a, {2, 0, 2});
  EXPECT_EQ(y.dim(0), 3);
  EXPECT_FLOAT_EQ(y.data()[0], 5.0f);
  EXPECT_FLOAT_EQ(y.data()[2], 1.0f);
  EXPECT_FLOAT_EQ(y.data()[4], 5.0f);
}

TEST(OpsForwardTest, ConcatAndSliceRoundTrip) {
  Tensor a = Tensor::FromData({2, 2}, {1, 2, 3, 4});
  Tensor b = Tensor::FromData({2, 1}, {9, 8});
  Tensor c = ConcatCols(a, b);
  EXPECT_EQ(c.dim(1), 3);
  Tensor back = SliceCols(c, 0, 2);
  for (int64_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(back.data()[i], a.data()[i]);
  Tensor tail = SliceCols(c, 2, 1);
  EXPECT_FLOAT_EQ(tail.data()[1], 8.0f);
}

TEST(OpsForwardTest, TripletLossZeroWhenWellSeparated) {
  Tensor a = Tensor::FromData({1, 2}, {0, 0});
  Tensor p = Tensor::FromData({1, 2}, {0.1f, 0});
  Tensor n = Tensor::FromData({1, 2}, {5, 5});
  EXPECT_FLOAT_EQ(TripletLoss(a, p, n, 0.5f).item(), 0.0f);
}

TEST(OpsForwardTest, TripletLossPositiveWhenViolated) {
  Tensor a = Tensor::FromData({1, 2}, {0, 0});
  Tensor p = Tensor::FromData({1, 2}, {2, 0});  // d_ap = 4.
  Tensor n = Tensor::FromData({1, 2}, {1, 0});  // d_an = 1.
  EXPECT_FLOAT_EQ(TripletLoss(a, p, n, 0.5f).item(), 3.5f);
}

TEST(OpsForwardTest, NllLossPicksTargets) {
  Tensor lp = Tensor::FromData({2, 2},
                               {std::log(0.9f), std::log(0.1f),
                                std::log(0.2f), std::log(0.8f)});
  Tensor loss = NllLoss(lp, {0, 1});
  EXPECT_NEAR(loss.item(), -(std::log(0.9f) + std::log(0.8f)) / 2.0f, 1e-5f);
}

// ---------------------------------------------------------------------------
// Gradient checks (parameterized over ops).
// ---------------------------------------------------------------------------

struct GradCase {
  std::string name;
  std::function<void(Rng*)> run;
};

class GradCheckTest : public ::testing::TestWithParam<GradCase> {};

TEST_P(GradCheckTest, AnalyticMatchesNumeric) {
  Rng rng(1234);
  GetParam().run(&rng);
}

std::vector<GradCase> MakeGradCases() {
  std::vector<GradCase> cases;
  auto scalar = [](const Tensor& t) { return Mean(Mul(t, t)); };

  cases.push_back({"Add", [scalar](Rng* rng) {
    ExpectGradientsMatch(
        [&](const std::vector<Tensor>& in) {
          return Mean(Mul(Add(in[0], in[1]), Add(in[0], in[1])));
        },
        {RandomTensor({3, 4}, rng), RandomTensor({3, 4}, rng)});
  }});
  cases.push_back({"AddBias", [](Rng* rng) {
    ExpectGradientsMatch(
        [&](const std::vector<Tensor>& in) {
          return Mean(Mul(Add(in[0], in[1]), Add(in[0], in[1])));
        },
        {RandomTensor({3, 4}, rng), RandomTensor({4}, rng)});
  }});
  cases.push_back({"SubMul", [](Rng* rng) {
    ExpectGradientsMatch(
        [&](const std::vector<Tensor>& in) {
          return Sum(Mul(Sub(in[0], in[1]), in[2]));
        },
        {RandomTensor({2, 3}, rng), RandomTensor({2, 3}, rng),
         RandomTensor({2, 3}, rng)});
  }});
  cases.push_back({"Scalars", [](Rng* rng) {
    ExpectGradientsMatch(
        [&](const std::vector<Tensor>& in) {
          return Mean(MulScalar(AddScalar(in[0], 0.7f), 1.3f));
        },
        {RandomTensor({5}, rng)});
  }});
  cases.push_back({"Sigmoid", [](Rng* rng) {
    ExpectGradientsMatch(
        [&](const std::vector<Tensor>& in) { return Mean(Sigmoid(in[0])); },
        {RandomTensor({4, 3}, rng)});
  }});
  cases.push_back({"Tanh", [](Rng* rng) {
    ExpectGradientsMatch(
        [&](const std::vector<Tensor>& in) { return Mean(Tanh(in[0])); },
        {RandomTensor({4, 3}, rng)});
  }});
  cases.push_back({"MatMul", [](Rng* rng) {
    ExpectGradientsMatch(
        [&](const std::vector<Tensor>& in) {
          return Mean(Mul(MatMul(in[0], in[1]), MatMul(in[0], in[1])));
        },
        {RandomTensor({3, 4}, rng), RandomTensor({4, 2}, rng)});
  }});
  cases.push_back({"Transpose", [scalar](Rng* rng) {
    ExpectGradientsMatch(
        [&](const std::vector<Tensor>& in) {
          return Mean(Mul(Transpose(in[0]), Transpose(in[0])));
        },
        {RandomTensor({3, 5}, rng)});
  }});
  cases.push_back({"Conv1dNoPad", [](Rng* rng) {
    ExpectGradientsMatch(
        [&](const std::vector<Tensor>& in) {
          Tensor y = Conv1d(in[0], in[1], in[2], 0);
          return Mean(Mul(y, y));
        },
        {RandomTensor({2, 3, 6}, rng), RandomTensor({4, 3, 3}, rng),
         RandomTensor({4}, rng)});
  }});
  cases.push_back({"Conv1dPad", [](Rng* rng) {
    ExpectGradientsMatch(
        [&](const std::vector<Tensor>& in) {
          Tensor y = Conv1d(in[0], in[1], in[2], 1);
          return Mean(Mul(y, y));
        },
        {RandomTensor({2, 2, 5}, rng), RandomTensor({3, 2, 3}, rng),
         RandomTensor({3}, rng)});
  }});
  cases.push_back({"GlobalMaxPool", [](Rng* rng) {
    ExpectGradientsMatch(
        [&](const std::vector<Tensor>& in) {
          return Mean(Mul(GlobalMaxPool1d(in[0]), GlobalMaxPool1d(in[0])));
        },
        {RandomTensor({2, 3, 5}, rng)});
  }});
  cases.push_back({"MaxPool1d", [](Rng* rng) {
    ExpectGradientsMatch(
        [&](const std::vector<Tensor>& in) {
          Tensor y = MaxPool1d(in[0], 2);
          return Mean(Mul(y, y));
        },
        {RandomTensor({2, 2, 6}, rng)});
  }});
  cases.push_back({"RowSum", [](Rng* rng) {
    ExpectGradientsMatch(
        [&](const std::vector<Tensor>& in) {
          Tensor y = RowSum(in[0]);
          return Mean(Mul(y, y));
        },
        {RandomTensor({3, 4}, rng)});
  }});
  cases.push_back({"MeanRows", [](Rng* rng) {
    ExpectGradientsMatch(
        [&](const std::vector<Tensor>& in) {
          Tensor y = MeanRows(in[0]);
          return Sum(Mul(y, y));
        },
        {RandomTensor({3, 4}, rng)});
  }});
  cases.push_back({"ConcatSlice", [](Rng* rng) {
    ExpectGradientsMatch(
        [&](const std::vector<Tensor>& in) {
          Tensor c = ConcatCols(in[0], in[1]);
          Tensor s = SliceCols(c, 1, 3);
          return Mean(Mul(s, s));
        },
        {RandomTensor({2, 3}, rng), RandomTensor({2, 2}, rng)});
  }});
  cases.push_back({"GatherRows", [](Rng* rng) {
    ExpectGradientsMatch(
        [&](const std::vector<Tensor>& in) {
          Tensor y = GatherRows(in[0], {0, 2, 2, 1});
          return Mean(Mul(y, y));
        },
        {RandomTensor({3, 4}, rng)});
  }});
  cases.push_back({"Softmax", [](Rng* rng) {
    ExpectGradientsMatch(
        [&](const std::vector<Tensor>& in) {
          Tensor y = SoftmaxRows(in[0]);
          return Mean(Mul(y, y));
        },
        {RandomTensor({3, 4}, rng)});
  }});
  cases.push_back({"CrossEntropy", [](Rng* rng) {
    ExpectGradientsMatch(
        [&](const std::vector<Tensor>& in) {
          return CrossEntropyRows(in[0], {1, 0, 3});
        },
        {RandomTensor({3, 4}, rng)});
  }});
  cases.push_back({"LayerNorm", [](Rng* rng) {
    ExpectGradientsMatch(
        [&](const std::vector<Tensor>& in) {
          Tensor y = LayerNormRows(in[0], in[1], in[2]);
          return Mean(Mul(y, y));
        },
        {RandomTensor({3, 6}, rng), RandomTensor({6}, rng),
         RandomTensor({6}, rng)});
  }});
  cases.push_back({"RowL2Normalize", [](Rng* rng) {
    ExpectGradientsMatch(
        [&](const std::vector<Tensor>& in) {
          Tensor y = RowL2Normalize(in[0]);
          return Mean(Mul(y, Tanh(y)));
        },
        {RandomTensor({3, 5}, rng)});
  }});
  cases.push_back({"TripletLoss", [](Rng* rng) {
    ExpectGradientsMatch(
        [&](const std::vector<Tensor>& in) {
          return TripletLoss(in[0], in[1], in[2], 0.4f);
        },
        {RandomTensor({4, 6}, rng), RandomTensor({4, 6}, rng),
         RandomTensor({4, 6}, rng)});
  }});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, GradCheckTest, ::testing::ValuesIn(MakeGradCases()),
    [](const ::testing::TestParamInfo<GradCase>& info) {
      return info.param.name;
    });

// ---------------------------------------------------------------------------
// nn layers & optimizers.
// ---------------------------------------------------------------------------

TEST(NnTest, LinearShapesAndGrad) {
  Rng rng(5);
  nn::Linear layer(4, 3, &rng);
  Tensor x = RandomTensor({2, 4}, &rng, /*requires_grad=*/false);
  Tensor y = layer.Forward(x);
  EXPECT_EQ(y.dim(0), 2);
  EXPECT_EQ(y.dim(1), 3);
  Mean(Mul(y, y)).Backward();
  EXPECT_EQ(layer.Parameters().size(), 2u);
}

TEST(NnTest, LstmCellStateShapes) {
  Rng rng(6);
  nn::LstmCell cell(3, 5, &rng);
  auto [h, c] = cell.InitialState(2);
  Tensor x = RandomTensor({2, 3}, &rng, false);
  auto [h2, c2] = cell.Step(x, h, c);
  EXPECT_EQ(h2.dim(1), 5);
  EXPECT_EQ(c2.dim(1), 5);
  // Repeated steps keep shapes and produce finite values.
  auto [h3, c3] = cell.Step(x, h2, c2);
  for (int64_t i = 0; i < h3.size(); ++i) {
    EXPECT_TRUE(std::isfinite(h3.data()[i]));
  }
}

TEST(NnTest, LstmGradFlowsThroughTime) {
  Rng rng(7);
  nn::LstmCell cell(2, 3, &rng);
  Tensor x = RandomTensor({1, 2}, &rng, false);
  auto [h, c] = cell.InitialState(1);
  for (int t = 0; t < 3; ++t) {
    auto next = cell.Step(x, h, c);
    h = next.first;
    c = next.second;
  }
  Mean(Mul(h, h)).Backward();
  float grad_norm = 0.0f;
  for (Tensor& p : cell.Parameters()) {
    for (int64_t i = 0; i < p.size(); ++i) {
      grad_norm += p.grad()[i] * p.grad()[i];
    }
  }
  EXPECT_GT(grad_norm, 0.0f);
}

TEST(OptimTest, SgdConvergesOnQuadratic) {
  Tensor w = Tensor::FromData({1}, {5.0f}, true);
  Sgd opt({w}, 0.1f);
  for (int i = 0; i < 100; ++i) {
    opt.ZeroGrad();
    Tensor loss = Mul(w, w);
    loss.Backward();
    opt.Step();
  }
  EXPECT_NEAR(w.item(), 0.0f, 1e-3f);
}

TEST(OptimTest, AdamConvergesOnQuadratic) {
  Tensor w = Tensor::FromData({2}, {5.0f, -3.0f}, true);
  Adam opt({w}, 0.1f);
  for (int i = 0; i < 300; ++i) {
    opt.ZeroGrad();
    Tensor loss = Sum(Mul(w, w));
    loss.Backward();
    opt.Step();
  }
  EXPECT_NEAR(w.data()[0], 0.0f, 1e-2f);
  EXPECT_NEAR(w.data()[1], 0.0f, 1e-2f);
}

TEST(OptimTest, SgdMomentumAcceleratesDescent) {
  Tensor w1 = Tensor::FromData({1}, {5.0f}, true);
  Tensor w2 = Tensor::FromData({1}, {5.0f}, true);
  Sgd plain({w1}, 0.01f, 0.0f);
  Sgd momentum({w2}, 0.01f, 0.9f);
  for (int i = 0; i < 20; ++i) {
    plain.ZeroGrad();
    Mul(w1, w1).Backward();
    plain.Step();
    momentum.ZeroGrad();
    Mul(w2, w2).Backward();
    momentum.Step();
  }
  EXPECT_LT(std::abs(w2.item()), std::abs(w1.item()));
}

TEST(SerializeTest, RoundTripPreservesParameters) {
  Rng rng(8);
  nn::Linear layer(3, 2, &rng);
  std::stringstream buffer;
  ASSERT_TRUE(SaveParameters(layer.Parameters(), &buffer).ok());

  nn::Linear other(3, 2, &rng);  // Different init.
  std::vector<Tensor> params = other.Parameters();
  ASSERT_TRUE(LoadParameters(&params, &buffer).ok());
  for (size_t i = 0; i < params.size(); ++i) {
    Tensor a = layer.Parameters()[i];
    for (int64_t j = 0; j < a.size(); ++j) {
      EXPECT_EQ(a.data()[j], params[i].data()[j]);
    }
  }
}

TEST(SerializeTest, ShapeMismatchRejected) {
  Rng rng(9);
  nn::Linear layer(3, 2, &rng);
  std::stringstream buffer;
  ASSERT_TRUE(SaveParameters(layer.Parameters(), &buffer).ok());
  nn::Linear other(2, 3, &rng);
  std::vector<Tensor> params = other.Parameters();
  EXPECT_FALSE(LoadParameters(&params, &buffer).ok());
}

TEST(SerializeTest, CountMismatchRejected) {
  Rng rng(10);
  nn::Linear layer(3, 2, &rng);
  std::stringstream buffer;
  ASSERT_TRUE(SaveParameters(layer.Parameters(), &buffer).ok());
  std::vector<Tensor> params = {Tensor::Zeros({3, 2})};
  EXPECT_FALSE(LoadParameters(&params, &buffer).ok());
}

}  // namespace
}  // namespace emblookup::tensor
