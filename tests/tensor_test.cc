#include <cmath>
#include <sstream>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "tensor/nn.h"
#include "tensor/ops.h"
#include "tensor/optim.h"
#include "tensor/serialize.h"
#include "tensor/tensor.h"
#include "tests/gradcheck.h"

namespace emblookup::tensor {
namespace {

TEST(TensorTest, ZerosAndShape) {
  Tensor t = Tensor::Zeros({2, 3});
  EXPECT_EQ(t.size(), 6);
  EXPECT_EQ(t.ndim(), 2);
  EXPECT_EQ(t.dim(0), 2);
  EXPECT_EQ(t.dim(1), 3);
  for (int64_t i = 0; i < t.size(); ++i) EXPECT_EQ(t.data()[i], 0.0f);
}

TEST(TensorTest, FromDataAndItem) {
  Tensor t = Tensor::FromData({3}, {1.0f, 2.0f, 3.0f});
  EXPECT_EQ(t.item(), 1.0f);
  EXPECT_EQ(t.data()[2], 3.0f);
}

TEST(TensorTest, FullFillsValue) {
  Tensor t = Tensor::Full({2, 2}, 7.5f);
  for (int64_t i = 0; i < 4; ++i) EXPECT_EQ(t.data()[i], 7.5f);
}

TEST(TensorTest, CloneIsDeep) {
  Tensor a = Tensor::FromData({2}, {1.0f, 2.0f});
  Tensor b = a.Clone();
  b.data()[0] = 99.0f;
  EXPECT_EQ(a.data()[0], 1.0f);
}

TEST(TensorTest, CopyAliasesStorage) {
  Tensor a = Tensor::FromData({2}, {1.0f, 2.0f});
  Tensor b = a;  // Handle copy.
  b.data()[0] = 99.0f;
  EXPECT_EQ(a.data()[0], 99.0f);
}

TEST(TensorTest, ReshapePreservesDataAndGradient) {
  Tensor a = Tensor::FromData({2, 3}, {1, 2, 3, 4, 5, 6}, true);
  Tensor r = a.Reshape({3, 2});
  EXPECT_EQ(r.dim(0), 3);
  EXPECT_EQ(r.data()[5], 6.0f);
  Tensor loss = Sum(Mul(r, r));
  loss.Backward();
  EXPECT_FLOAT_EQ(a.grad()[0], 2.0f);   // d(sum x^2)/dx = 2x.
  EXPECT_FLOAT_EQ(a.grad()[5], 12.0f);
}

TEST(TensorTest, BackwardThroughSharedNode) {
  // y = x + x should give dy/dx = 2.
  Tensor x = Tensor::FromData({1}, {3.0f}, true);
  Tensor y = Add(x, x);
  y.Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 2.0f);
}

TEST(TensorTest, NoGradGuardSuppressesTape) {
  Tensor x = Tensor::FromData({1}, {3.0f}, true);
  NoGradGuard guard;
  Tensor y = Mul(x, x);
  EXPECT_FALSE(y.requires_grad());
}

TEST(TensorTest, DetachBreaksTape) {
  Tensor x = Tensor::FromData({1}, {3.0f}, true);
  Tensor d = Mul(x, x).Detach();
  EXPECT_FALSE(d.requires_grad());
  EXPECT_FLOAT_EQ(d.item(), 9.0f);
}

TEST(TensorTest, ShapeToStringFormats) {
  EXPECT_EQ(ShapeToString({2, 3, 4}), "(2, 3, 4)");
  EXPECT_EQ(NumElements({2, 3, 4}), 24);
}

// ---------------------------------------------------------------------------
// Forward-value sanity checks.
// ---------------------------------------------------------------------------

TEST(OpsForwardTest, AddBroadcastBias) {
  Tensor a = Tensor::FromData({2, 2}, {1, 2, 3, 4});
  Tensor b = Tensor::FromData({2}, {10, 20});
  Tensor y = Add(a, b);
  EXPECT_FLOAT_EQ(y.data()[0], 11.0f);
  EXPECT_FLOAT_EQ(y.data()[3], 24.0f);
}

TEST(OpsForwardTest, MatMulValues) {
  Tensor a = Tensor::FromData({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromData({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor y = MatMul(a, b);
  EXPECT_FLOAT_EQ(y.data()[0], 58.0f);
  EXPECT_FLOAT_EQ(y.data()[3], 154.0f);
}

TEST(OpsForwardTest, TransposeValues) {
  Tensor a = Tensor::FromData({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor y = Transpose(a);
  EXPECT_EQ(y.dim(0), 3);
  EXPECT_FLOAT_EQ(y.data()[1], 4.0f);
}

TEST(OpsForwardTest, ReluClamps) {
  Tensor a = Tensor::FromData({3}, {-1.0f, 0.0f, 2.0f});
  Tensor y = Relu(a);
  EXPECT_FLOAT_EQ(y.data()[0], 0.0f);
  EXPECT_FLOAT_EQ(y.data()[2], 2.0f);
}

TEST(OpsForwardTest, SoftmaxRowsSumToOne) {
  Rng rng(1);
  Tensor a = RandomTensor({4, 7}, &rng);
  Tensor y = SoftmaxRows(a);
  for (int64_t i = 0; i < 4; ++i) {
    float sum = 0.0f;
    for (int64_t j = 0; j < 7; ++j) sum += y.data()[i * 7 + j];
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

TEST(OpsForwardTest, LogSoftmaxMatchesSoftmax) {
  Rng rng(2);
  Tensor a = RandomTensor({3, 5}, &rng);
  Tensor s = SoftmaxRows(a);
  Tensor ls = LogSoftmaxRows(a);
  for (int64_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(std::log(s.data()[i]), ls.data()[i], 1e-4f);
  }
}

TEST(OpsForwardTest, GlobalMaxPoolPicksMax) {
  Tensor a = Tensor::FromData({1, 2, 3}, {1, 5, 2, -1, -7, -2});
  Tensor y = GlobalMaxPool1d(a);
  EXPECT_FLOAT_EQ(y.data()[0], 5.0f);
  EXPECT_FLOAT_EQ(y.data()[1], -1.0f);
}

TEST(OpsForwardTest, MaxPool1dHalvesLength) {
  Tensor a = Tensor::FromData({1, 1, 4}, {1, 9, 3, 2});
  Tensor y = MaxPool1d(a, 2);
  EXPECT_EQ(y.dim(2), 2);
  EXPECT_FLOAT_EQ(y.data()[0], 9.0f);
  EXPECT_FLOAT_EQ(y.data()[1], 3.0f);
}

TEST(OpsForwardTest, Conv1dIdentityKernel) {
  // Kernel of size 1 with weight 1 reproduces the input channel.
  Tensor x = Tensor::FromData({1, 1, 4}, {1, 2, 3, 4});
  Tensor w = Tensor::FromData({1, 1, 1}, {1.0f});
  Tensor b = Tensor::Zeros({1});
  Tensor y = Conv1d(x, w, b, /*padding=*/0);
  for (int64_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(y.data()[i], x.data()[i]);
}

TEST(OpsForwardTest, Conv1dPaddingKeepsLength) {
  Tensor x = Tensor::FromData({1, 1, 4}, {1, 2, 3, 4});
  Tensor w = Tensor::FromData({1, 1, 3}, {1, 1, 1});
  Tensor b = Tensor::Zeros({1});
  Tensor y = Conv1d(x, w, b, /*padding=*/1);
  EXPECT_EQ(y.dim(2), 4);
  EXPECT_FLOAT_EQ(y.data()[0], 3.0f);   // 0+1+2.
  EXPECT_FLOAT_EQ(y.data()[1], 6.0f);   // 1+2+3.
  EXPECT_FLOAT_EQ(y.data()[3], 7.0f);   // 3+4+0.
}

TEST(OpsForwardTest, RowL2NormalizeUnitNorm) {
  Rng rng(3);
  Tensor a = RandomTensor({5, 8}, &rng);
  Tensor y = RowL2Normalize(a);
  for (int64_t i = 0; i < 5; ++i) {
    float sq = 0.0f;
    for (int64_t j = 0; j < 8; ++j) {
      sq += y.data()[i * 8 + j] * y.data()[i * 8 + j];
    }
    EXPECT_NEAR(sq, 1.0f, 1e-4f);
  }
}

TEST(OpsForwardTest, GatherRowsSelectsAndRepeats) {
  Tensor a = Tensor::FromData({3, 2}, {1, 2, 3, 4, 5, 6});
  Tensor y = GatherRows(a, {2, 0, 2});
  EXPECT_EQ(y.dim(0), 3);
  EXPECT_FLOAT_EQ(y.data()[0], 5.0f);
  EXPECT_FLOAT_EQ(y.data()[2], 1.0f);
  EXPECT_FLOAT_EQ(y.data()[4], 5.0f);
}

TEST(OpsForwardTest, ConcatAndSliceRoundTrip) {
  Tensor a = Tensor::FromData({2, 2}, {1, 2, 3, 4});
  Tensor b = Tensor::FromData({2, 1}, {9, 8});
  Tensor c = ConcatCols(a, b);
  EXPECT_EQ(c.dim(1), 3);
  Tensor back = SliceCols(c, 0, 2);
  for (int64_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(back.data()[i], a.data()[i]);
  Tensor tail = SliceCols(c, 2, 1);
  EXPECT_FLOAT_EQ(tail.data()[1], 8.0f);
}

TEST(OpsForwardTest, TripletLossZeroWhenWellSeparated) {
  Tensor a = Tensor::FromData({1, 2}, {0, 0});
  Tensor p = Tensor::FromData({1, 2}, {0.1f, 0});
  Tensor n = Tensor::FromData({1, 2}, {5, 5});
  EXPECT_FLOAT_EQ(TripletLoss(a, p, n, 0.5f).item(), 0.0f);
}

TEST(OpsForwardTest, TripletLossPositiveWhenViolated) {
  Tensor a = Tensor::FromData({1, 2}, {0, 0});
  Tensor p = Tensor::FromData({1, 2}, {2, 0});  // d_ap = 4.
  Tensor n = Tensor::FromData({1, 2}, {1, 0});  // d_an = 1.
  EXPECT_FLOAT_EQ(TripletLoss(a, p, n, 0.5f).item(), 3.5f);
}

TEST(OpsForwardTest, NllLossPicksTargets) {
  Tensor lp = Tensor::FromData({2, 2},
                               {std::log(0.9f), std::log(0.1f),
                                std::log(0.2f), std::log(0.8f)});
  Tensor loss = NllLoss(lp, {0, 1});
  EXPECT_NEAR(loss.item(), -(std::log(0.9f) + std::log(0.8f)) / 2.0f, 1e-5f);
}

// ---------------------------------------------------------------------------
// Gradient checks (parameterized over ops).
// ---------------------------------------------------------------------------

struct GradCase {
  std::string name;
  std::function<void(Rng*)> run;
};

class GradCheckTest : public ::testing::TestWithParam<GradCase> {};

TEST_P(GradCheckTest, AnalyticMatchesNumeric) {
  Rng rng(1234);
  GetParam().run(&rng);
}

std::vector<GradCase> MakeGradCases() {
  std::vector<GradCase> cases;
  auto scalar = [](const Tensor& t) { return Mean(Mul(t, t)); };

  cases.push_back({"Add", [scalar](Rng* rng) {
    ExpectGradientsMatch(
        [&](const std::vector<Tensor>& in) {
          return Mean(Mul(Add(in[0], in[1]), Add(in[0], in[1])));
        },
        {RandomTensor({3, 4}, rng), RandomTensor({3, 4}, rng)});
  }});
  cases.push_back({"AddBias", [](Rng* rng) {
    ExpectGradientsMatch(
        [&](const std::vector<Tensor>& in) {
          return Mean(Mul(Add(in[0], in[1]), Add(in[0], in[1])));
        },
        {RandomTensor({3, 4}, rng), RandomTensor({4}, rng)});
  }});
  cases.push_back({"SubMul", [](Rng* rng) {
    ExpectGradientsMatch(
        [&](const std::vector<Tensor>& in) {
          return Sum(Mul(Sub(in[0], in[1]), in[2]));
        },
        {RandomTensor({2, 3}, rng), RandomTensor({2, 3}, rng),
         RandomTensor({2, 3}, rng)});
  }});
  cases.push_back({"Scalars", [](Rng* rng) {
    ExpectGradientsMatch(
        [&](const std::vector<Tensor>& in) {
          return Mean(MulScalar(AddScalar(in[0], 0.7f), 1.3f));
        },
        {RandomTensor({5}, rng)});
  }});
  cases.push_back({"Sigmoid", [](Rng* rng) {
    ExpectGradientsMatch(
        [&](const std::vector<Tensor>& in) { return Mean(Sigmoid(in[0])); },
        {RandomTensor({4, 3}, rng)});
  }});
  cases.push_back({"Tanh", [](Rng* rng) {
    ExpectGradientsMatch(
        [&](const std::vector<Tensor>& in) { return Mean(Tanh(in[0])); },
        {RandomTensor({4, 3}, rng)});
  }});
  cases.push_back({"MatMul", [](Rng* rng) {
    ExpectGradientsMatch(
        [&](const std::vector<Tensor>& in) {
          return Mean(Mul(MatMul(in[0], in[1]), MatMul(in[0], in[1])));
        },
        {RandomTensor({3, 4}, rng), RandomTensor({4, 2}, rng)});
  }});
  cases.push_back({"Transpose", [scalar](Rng* rng) {
    ExpectGradientsMatch(
        [&](const std::vector<Tensor>& in) {
          return Mean(Mul(Transpose(in[0]), Transpose(in[0])));
        },
        {RandomTensor({3, 5}, rng)});
  }});
  cases.push_back({"Conv1dNoPad", [](Rng* rng) {
    ExpectGradientsMatch(
        [&](const std::vector<Tensor>& in) {
          Tensor y = Conv1d(in[0], in[1], in[2], 0);
          return Mean(Mul(y, y));
        },
        {RandomTensor({2, 3, 6}, rng), RandomTensor({4, 3, 3}, rng),
         RandomTensor({4}, rng)});
  }});
  cases.push_back({"Conv1dPad", [](Rng* rng) {
    ExpectGradientsMatch(
        [&](const std::vector<Tensor>& in) {
          Tensor y = Conv1d(in[0], in[1], in[2], 1);
          return Mean(Mul(y, y));
        },
        {RandomTensor({2, 2, 5}, rng), RandomTensor({3, 2, 3}, rng),
         RandomTensor({3}, rng)});
  }});
  cases.push_back({"GlobalMaxPool", [](Rng* rng) {
    ExpectGradientsMatch(
        [&](const std::vector<Tensor>& in) {
          return Mean(Mul(GlobalMaxPool1d(in[0]), GlobalMaxPool1d(in[0])));
        },
        {RandomTensor({2, 3, 5}, rng)});
  }});
  cases.push_back({"MaxPool1d", [](Rng* rng) {
    ExpectGradientsMatch(
        [&](const std::vector<Tensor>& in) {
          Tensor y = MaxPool1d(in[0], 2);
          return Mean(Mul(y, y));
        },
        {RandomTensor({2, 2, 6}, rng)});
  }});
  cases.push_back({"RowSum", [](Rng* rng) {
    ExpectGradientsMatch(
        [&](const std::vector<Tensor>& in) {
          Tensor y = RowSum(in[0]);
          return Mean(Mul(y, y));
        },
        {RandomTensor({3, 4}, rng)});
  }});
  cases.push_back({"MeanRows", [](Rng* rng) {
    ExpectGradientsMatch(
        [&](const std::vector<Tensor>& in) {
          Tensor y = MeanRows(in[0]);
          return Sum(Mul(y, y));
        },
        {RandomTensor({3, 4}, rng)});
  }});
  cases.push_back({"ConcatSlice", [](Rng* rng) {
    ExpectGradientsMatch(
        [&](const std::vector<Tensor>& in) {
          Tensor c = ConcatCols(in[0], in[1]);
          Tensor s = SliceCols(c, 1, 3);
          return Mean(Mul(s, s));
        },
        {RandomTensor({2, 3}, rng), RandomTensor({2, 2}, rng)});
  }});
  cases.push_back({"GatherRows", [](Rng* rng) {
    ExpectGradientsMatch(
        [&](const std::vector<Tensor>& in) {
          Tensor y = GatherRows(in[0], {0, 2, 2, 1});
          return Mean(Mul(y, y));
        },
        {RandomTensor({3, 4}, rng)});
  }});
  cases.push_back({"Softmax", [](Rng* rng) {
    ExpectGradientsMatch(
        [&](const std::vector<Tensor>& in) {
          Tensor y = SoftmaxRows(in[0]);
          return Mean(Mul(y, y));
        },
        {RandomTensor({3, 4}, rng)});
  }});
  cases.push_back({"CrossEntropy", [](Rng* rng) {
    ExpectGradientsMatch(
        [&](const std::vector<Tensor>& in) {
          return CrossEntropyRows(in[0], {1, 0, 3});
        },
        {RandomTensor({3, 4}, rng)});
  }});
  cases.push_back({"LayerNorm", [](Rng* rng) {
    ExpectGradientsMatch(
        [&](const std::vector<Tensor>& in) {
          Tensor y = LayerNormRows(in[0], in[1], in[2]);
          return Mean(Mul(y, y));
        },
        {RandomTensor({3, 6}, rng), RandomTensor({6}, rng),
         RandomTensor({6}, rng)});
  }});
  cases.push_back({"RowL2Normalize", [](Rng* rng) {
    ExpectGradientsMatch(
        [&](const std::vector<Tensor>& in) {
          Tensor y = RowL2Normalize(in[0]);
          return Mean(Mul(y, Tanh(y)));
        },
        {RandomTensor({3, 5}, rng)});
  }});
  cases.push_back({"TripletLoss", [](Rng* rng) {
    ExpectGradientsMatch(
        [&](const std::vector<Tensor>& in) {
          return TripletLoss(in[0], in[1], in[2], 0.4f);
        },
        {RandomTensor({4, 6}, rng), RandomTensor({4, 6}, rng),
         RandomTensor({4, 6}, rng)});
  }});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, GradCheckTest, ::testing::ValuesIn(MakeGradCases()),
    [](const ::testing::TestParamInfo<GradCase>& info) {
      return info.param.name;
    });

// ---------------------------------------------------------------------------
// nn layers & optimizers.
// ---------------------------------------------------------------------------

TEST(NnTest, LinearShapesAndGrad) {
  Rng rng(5);
  nn::Linear layer(4, 3, &rng);
  Tensor x = RandomTensor({2, 4}, &rng, /*requires_grad=*/false);
  Tensor y = layer.Forward(x);
  EXPECT_EQ(y.dim(0), 2);
  EXPECT_EQ(y.dim(1), 3);
  Mean(Mul(y, y)).Backward();
  EXPECT_EQ(layer.Parameters().size(), 2u);
}

TEST(NnTest, LstmCellStateShapes) {
  Rng rng(6);
  nn::LstmCell cell(3, 5, &rng);
  auto [h, c] = cell.InitialState(2);
  Tensor x = RandomTensor({2, 3}, &rng, false);
  auto [h2, c2] = cell.Step(x, h, c);
  EXPECT_EQ(h2.dim(1), 5);
  EXPECT_EQ(c2.dim(1), 5);
  // Repeated steps keep shapes and produce finite values.
  auto [h3, c3] = cell.Step(x, h2, c2);
  for (int64_t i = 0; i < h3.size(); ++i) {
    EXPECT_TRUE(std::isfinite(h3.data()[i]));
  }
}

TEST(NnTest, LstmGradFlowsThroughTime) {
  Rng rng(7);
  nn::LstmCell cell(2, 3, &rng);
  Tensor x = RandomTensor({1, 2}, &rng, false);
  auto [h, c] = cell.InitialState(1);
  for (int t = 0; t < 3; ++t) {
    auto next = cell.Step(x, h, c);
    h = next.first;
    c = next.second;
  }
  Mean(Mul(h, h)).Backward();
  float grad_norm = 0.0f;
  for (Tensor& p : cell.Parameters()) {
    for (int64_t i = 0; i < p.size(); ++i) {
      grad_norm += p.grad()[i] * p.grad()[i];
    }
  }
  EXPECT_GT(grad_norm, 0.0f);
}

TEST(OptimTest, SgdConvergesOnQuadratic) {
  Tensor w = Tensor::FromData({1}, {5.0f}, true);
  Sgd opt({w}, 0.1f);
  for (int i = 0; i < 100; ++i) {
    opt.ZeroGrad();
    Tensor loss = Mul(w, w);
    loss.Backward();
    opt.Step();
  }
  EXPECT_NEAR(w.item(), 0.0f, 1e-3f);
}

TEST(OptimTest, AdamConvergesOnQuadratic) {
  Tensor w = Tensor::FromData({2}, {5.0f, -3.0f}, true);
  Adam opt({w}, 0.1f);
  for (int i = 0; i < 300; ++i) {
    opt.ZeroGrad();
    Tensor loss = Sum(Mul(w, w));
    loss.Backward();
    opt.Step();
  }
  EXPECT_NEAR(w.data()[0], 0.0f, 1e-2f);
  EXPECT_NEAR(w.data()[1], 0.0f, 1e-2f);
}

TEST(OptimTest, SgdMomentumAcceleratesDescent) {
  Tensor w1 = Tensor::FromData({1}, {5.0f}, true);
  Tensor w2 = Tensor::FromData({1}, {5.0f}, true);
  Sgd plain({w1}, 0.01f, 0.0f);
  Sgd momentum({w2}, 0.01f, 0.9f);
  for (int i = 0; i < 20; ++i) {
    plain.ZeroGrad();
    Mul(w1, w1).Backward();
    plain.Step();
    momentum.ZeroGrad();
    Mul(w2, w2).Backward();
    momentum.Step();
  }
  EXPECT_LT(std::abs(w2.item()), std::abs(w1.item()));
}

// --- Batched inference ops (DESIGN.md §13) ---------------------------------

// Random (B, C, L) channels-major tensor plus its channels-last (B, L, C)
// transpose, so the inference ops can be checked against the autograd
// reference on identical values.
std::pair<Tensor, Tensor> RandomChannelPair(Rng* rng, int64_t b, int64_t c,
                                            int64_t l) {
  std::vector<float> major(b * c * l), last(b * l * c);
  for (int64_t bi = 0; bi < b; ++bi) {
    for (int64_t ci = 0; ci < c; ++ci) {
      for (int64_t t = 0; t < l; ++t) {
        const float v = rng->UniformFloat(-1.0f, 1.0f);
        major[(bi * c + ci) * l + t] = v;
        last[(bi * l + t) * c + ci] = v;
      }
    }
  }
  return {Tensor::FromData({b, c, l}, std::move(major)),
          Tensor::FromData({b, l, c}, std::move(last))};
}

TEST(InferenceOpsTest, MatMulBiasActMatchesReference) {
  Rng rng(31);
  NoGradGuard guard;
  nn::Linear layer(13, 7, &rng);
  std::vector<float> data(5 * 13);
  for (auto& v : data) v = rng.UniformFloat(-1.0f, 1.0f);
  Tensor x = Tensor::FromData({5, 13}, std::move(data));
  for (FusedAct act : {FusedAct::kNone, FusedAct::kRelu}) {
    Tensor fused = layer.ForwardFused(x, act);
    Tensor ref = layer.Forward(x);
    if (act == FusedAct::kRelu) ref = Relu(ref);
    ASSERT_EQ(fused.size(), ref.size());
    for (int64_t i = 0; i < ref.size(); ++i) {
      EXPECT_NEAR(fused.data()[i], ref.data()[i], 1e-5f);
    }
  }
}

TEST(InferenceOpsTest, Conv1dChannelsLastPaddedMatchesReference) {
  Rng rng(32);
  NoGradGuard guard;
  const int64_t b = 3, cin = 5, cout = 4, l = 9, kernel = 3, pad = 1;
  nn::Conv1dLayer conv(cin, cout, kernel, pad, &rng);
  auto [major, last] = RandomChannelPair(&rng, b, cin, l);
  Tensor ref = Relu(conv.Forward(major));  // (B, Cout, Lout)
  Tensor packed = PackConv1dWeight(conv.weight());
  Tensor got = Conv1dChannelsLastPadded(PadChannelsLast(last, pad), kernel,
                                        pad, packed, conv.bias(),
                                        FusedAct::kRelu);  // (B, Lout, Cout)
  ASSERT_EQ(got.dim(0), ref.dim(0));
  ASSERT_EQ(got.dim(1), ref.dim(2));
  ASSERT_EQ(got.dim(2), ref.dim(1));
  for (int64_t bi = 0; bi < b; ++bi) {
    for (int64_t co = 0; co < cout; ++co) {
      for (int64_t t = 0; t < ref.dim(2); ++t) {
        EXPECT_NEAR(got.data()[(bi * got.dim(1) + t) * cout + co],
                    ref.data()[(bi * cout + co) * ref.dim(2) + t], 1e-5f)
            << "b=" << bi << " c=" << co << " t=" << t;
      }
    }
  }
}

TEST(InferenceOpsTest, Conv1dChannelsLastPaddedBatchSplitInvariant) {
  // The batched GEMM windows never cross item boundaries, so a batch of 5
  // must be BITWISE identical to five single-item calls — odd batch sizes
  // included. This is the invariant that lets the serving layer re-batch
  // queries freely without changing results.
  Rng rng(33);
  NoGradGuard guard;
  const int64_t cin = 4, cout = 6, kernel = 3, pad = 1;
  nn::Conv1dLayer conv(cin, cout, kernel, pad, &rng);
  Tensor packed = PackConv1dWeight(conv.weight());
  for (int64_t b : {1, 2, 5}) {
    for (int64_t l : {2, 7, 32}) {
      auto [major, last] = RandomChannelPair(&rng, b, cin, l);
      (void)major;
      Tensor whole = Conv1dChannelsLastPadded(PadChannelsLast(last, pad),
                                              kernel, pad, packed,
                                              conv.bias(), FusedAct::kRelu);
      const int64_t per = whole.size() / b;
      for (int64_t bi = 0; bi < b; ++bi) {
        std::vector<float> item(last.data() + bi * l * cin,
                                last.data() + (bi + 1) * l * cin);
        Tensor single = Conv1dChannelsLastPadded(
            PadChannelsLast(Tensor::FromData({1, l, cin}, std::move(item)),
                            pad),
            kernel, pad, packed, conv.bias(), FusedAct::kRelu);
        ASSERT_EQ(single.size(), per);
        for (int64_t i = 0; i < per; ++i) {
          EXPECT_EQ(single.data()[i], whole.data()[bi * per + i])
              << "b=" << b << " l=" << l << " item=" << bi;
        }
      }
    }
  }
}

TEST(InferenceOpsTest, ChannelsLastPoolsMatchReference) {
  Rng rng(34);
  NoGradGuard guard;
  const int64_t b = 2, c = 5, l = 9;
  auto [major, last] = RandomChannelPair(&rng, b, c, l);
  // Max is order-free: channels-last pooling must match bitwise.
  Tensor gref = GlobalMaxPool1d(major);              // (B, C)
  Tensor glast = GlobalMaxPool1dChannelsLast(last);  // (B, C)
  ASSERT_EQ(gref.size(), glast.size());
  for (int64_t i = 0; i < gref.size(); ++i) {
    EXPECT_EQ(glast.data()[i], gref.data()[i]);
  }
  Tensor mref = MaxPool1d(major, 2);              // (B, C, L/2)
  Tensor mlast = MaxPool1dChannelsLast(last, 2);  // (B, L/2, C)
  ASSERT_EQ(mref.size(), mlast.size());
  for (int64_t bi = 0; bi < b; ++bi) {
    for (int64_t ci = 0; ci < c; ++ci) {
      for (int64_t t = 0; t < l / 2; ++t) {
        EXPECT_EQ(mlast.data()[(bi * (l / 2) + t) * c + ci],
                  mref.data()[(bi * c + ci) * (l / 2) + t]);
      }
    }
  }
}

TEST(InferenceOpsTest, Conv1dOneHotPaddedMatchesGemmPath) {
  // The indexed first-layer conv must agree with the dense one-hot GEMM
  // path on the same input, within float-summation-order tolerance. -1
  // indices stand for all-zero rows (structural padding + short-mention
  // tails) and must contribute nothing.
  Rng rng(36);
  NoGradGuard guard;
  const int64_t b = 3, cin = 7, cout = 5, l = 10, kernel = 3, pad = 1;
  const int64_t lp = l + 2 * pad;
  nn::Conv1dLayer conv(cin, cout, kernel, pad, &rng);
  Tensor packed = PackConv1dWeight(conv.weight());
  // Random sparse indices: ~1/4 padding (-1), the rest one-hot positions.
  std::vector<int32_t> idx(b * lp, -1);
  std::vector<float> dense(b * lp * cin, 0.0f);
  for (int64_t bi = 0; bi < b; ++bi) {
    for (int64_t t = 0; t < l; ++t) {
      if (rng.Uniform(4) == 0) continue;
      const int32_t p = static_cast<int32_t>(rng.Uniform(cin));
      idx[bi * lp + pad + t] = p;
      dense[((bi * lp) + pad + t) * cin + p] = 1.0f;
    }
  }
  Tensor xpad = Tensor::FromData({b, lp, cin}, std::move(dense));
  for (FusedAct act : {FusedAct::kNone, FusedAct::kRelu}) {
    Tensor ref = Conv1dChannelsLastPadded(xpad, kernel, pad, packed,
                                          conv.bias(), act);
    Tensor got = Conv1dOneHotPadded(idx, b, lp, cin, kernel, packed,
                                    conv.bias(), act);
    ASSERT_EQ(got.dim(0), ref.dim(0));
    ASSERT_EQ(got.dim(1), ref.dim(1));
    ASSERT_EQ(got.dim(2), ref.dim(2));
    for (int64_t i = 0; i < ref.size(); ++i) {
      EXPECT_NEAR(got.data()[i], ref.data()[i], 1e-5f) << "i=" << i;
    }
  }
}

TEST(InferenceOpsTest, Conv1dOneHotPaddedBatchSplitInvariant) {
  // Same re-batching contract as the GEMM conv: output rows depend only on
  // their own item's indices, so any batch split is bitwise identical.
  Rng rng(37);
  NoGradGuard guard;
  const int64_t cin = 6, cout = 4, l = 8, kernel = 3, pad = 1;
  const int64_t lp = l + 2 * pad;
  nn::Conv1dLayer conv(cin, cout, kernel, pad, &rng);
  Tensor packed = PackConv1dWeight(conv.weight());
  const int64_t b = 5;
  std::vector<int32_t> idx(b * lp, -1);
  for (int64_t bi = 0; bi < b; ++bi) {
    for (int64_t t = 0; t < l; ++t) {
      idx[bi * lp + pad + t] = static_cast<int32_t>(rng.Uniform(cin));
    }
  }
  Tensor whole = Conv1dOneHotPadded(idx, b, lp, cin, kernel, packed,
                                    conv.bias(), FusedAct::kRelu);
  const int64_t per = whole.size() / b;
  for (int64_t bi = 0; bi < b; ++bi) {
    std::vector<int32_t> item(idx.begin() + bi * lp,
                              idx.begin() + (bi + 1) * lp);
    Tensor single = Conv1dOneHotPadded(item, 1, lp, cin, kernel, packed,
                                       conv.bias(), FusedAct::kRelu);
    ASSERT_EQ(single.size(), per);
    for (int64_t i = 0; i < per; ++i) {
      EXPECT_EQ(single.data()[i], whole.data()[bi * per + i]) << "item=" << bi;
    }
  }
}

TEST(InferenceOpsTest, EmptyBatchProducesEmptyOutput) {
  Rng rng(35);
  NoGradGuard guard;
  nn::Conv1dLayer conv(3, 4, 3, 1, &rng);
  Tensor packed = PackConv1dWeight(conv.weight());
  Tensor empty = Tensor::FromData({0, 8, 3}, {});
  Tensor out = Conv1dChannelsLastPadded(PadChannelsLast(empty, 1), 3, 1,
                                        packed, conv.bias(), FusedAct::kRelu);
  EXPECT_EQ(out.dim(0), 0);
  EXPECT_EQ(out.size(), 0);
  Tensor onehot = Conv1dOneHotPadded({}, 0, 10, 3, 3, packed, conv.bias(),
                                     FusedAct::kRelu);
  EXPECT_EQ(onehot.dim(0), 0);
  EXPECT_EQ(onehot.size(), 0);
}

TEST(SerializeTest, RoundTripPreservesParameters) {
  Rng rng(8);
  nn::Linear layer(3, 2, &rng);
  std::stringstream buffer;
  ASSERT_TRUE(SaveParameters(layer.Parameters(), &buffer).ok());

  nn::Linear other(3, 2, &rng);  // Different init.
  std::vector<Tensor> params = other.Parameters();
  ASSERT_TRUE(LoadParameters(&params, &buffer).ok());
  for (size_t i = 0; i < params.size(); ++i) {
    Tensor a = layer.Parameters()[i];
    for (int64_t j = 0; j < a.size(); ++j) {
      EXPECT_EQ(a.data()[j], params[i].data()[j]);
    }
  }
}

TEST(SerializeTest, ShapeMismatchRejected) {
  Rng rng(9);
  nn::Linear layer(3, 2, &rng);
  std::stringstream buffer;
  ASSERT_TRUE(SaveParameters(layer.Parameters(), &buffer).ok());
  nn::Linear other(2, 3, &rng);
  std::vector<Tensor> params = other.Parameters();
  EXPECT_FALSE(LoadParameters(&params, &buffer).ok());
}

TEST(SerializeTest, CountMismatchRejected) {
  Rng rng(10);
  nn::Linear layer(3, 2, &rng);
  std::stringstream buffer;
  ASSERT_TRUE(SaveParameters(layer.Parameters(), &buffer).ok());
  std::vector<Tensor> params = {Tensor::Zeros({3, 2})};
  EXPECT_FALSE(LoadParameters(&params, &buffer).ok());
}

}  // namespace
}  // namespace emblookup::tensor
