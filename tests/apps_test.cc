#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "apps/evaluation.h"
#include "apps/lookup_services.h"
#include "apps/systems.h"
#include "apps/tasks.h"
#include "common/rng.h"
#include "kg/noise.h"
#include "kg/synthetic_kg.h"
#include "kg/tabular.h"

namespace emblookup::apps {
namespace {

const kg::KnowledgeGraph& Graph() {
  static const kg::KnowledgeGraph& graph = [] {
    kg::SyntheticKgOptions options;
    options.num_entities = 600;
    options.seed = 33;
    options.ambiguity_rate = 0.0;
    return *new kg::KnowledgeGraph(kg::GenerateSyntheticKg(options));
  }();
  return graph;
}

kg::TabularDataset CleanDataset() {
  Rng rng(44);
  kg::DatasetProfile profile = kg::DatasetProfile::StWikidataLike(0.1);
  profile.alias_cell_rate = 0.0;
  profile.typo_cell_rate = 0.0;
  return kg::GenerateDataset(Graph(), profile, &rng);
}

// --- Metrics ------------------------------------------------------------------

TEST(MetricsTest, PrecisionRecallF1) {
  Metrics m;
  m.AddPrediction(true);
  m.AddPrediction(true);
  m.AddPrediction(false);
  m.AddMiss();
  EXPECT_DOUBLE_EQ(m.Precision(), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(m.Recall(), 2.0 / 3.0);
  EXPECT_NEAR(m.F1(), 2.0 / 3.0, 1e-12);
}

TEST(MetricsTest, EmptyIsZero) {
  Metrics m;
  EXPECT_EQ(m.Precision(), 0.0);
  EXPECT_EQ(m.Recall(), 0.0);
  EXPECT_EQ(m.F1(), 0.0);
}

// --- Individual services ----------------------------------------------------------

struct ServiceCase {
  std::string name;
  std::function<std::unique_ptr<LookupService>()> make;
  bool alias_aware;
};

class ServiceTest : public ::testing::TestWithParam<ServiceCase> {};

TEST_P(ServiceTest, ExactLabelRetrieved) {
  auto service = GetParam().make();
  for (kg::EntityId e : {0, 50, 300}) {
    const auto hits = service->Lookup(Graph().entity(e).label, 10);
    bool found = false;
    for (kg::EntityId id : hits) found |= (id == e);
    EXPECT_TRUE(found) << GetParam().name << " entity " << e;
  }
}

TEST_P(ServiceTest, KLimitRespected) {
  auto service = GetParam().make();
  EXPECT_LE(service->Lookup(Graph().entity(0).label, 3).size(), 3u);
}

TEST_P(ServiceTest, BulkMatchesSingle) {
  auto service = GetParam().make();
  std::vector<std::string> queries = {Graph().entity(1).label,
                                      Graph().entity(2).label};
  const auto bulk = service->BulkLookup(queries, 5);
  ASSERT_EQ(bulk.size(), 2u);
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(bulk[i], service->Lookup(queries[i], 5));
  }
}

TEST_P(ServiceTest, AliasAwarenessMatchesDeployment) {
  auto service = GetParam().make();
  // Find an entity with a distinctly-spelled alias (the translation).
  const kg::Entity& e = Graph().entity(0);
  ASSERT_FALSE(e.aliases.empty());
  const auto hits = service->Lookup(e.aliases[0], 10);
  bool found = false;
  for (kg::EntityId id : hits) found |= (id == e.id);
  if (GetParam().alias_aware) {
    EXPECT_TRUE(found) << GetParam().name;
  }
  // Local label-only services are *allowed* to miss; no assertion.
}

INSTANTIATE_TEST_SUITE_P(
    AllServices, ServiceTest,
    ::testing::Values(
        ServiceCase{"fuzzywuzzy",
                    [] { return std::make_unique<FuzzyWuzzyService>(&Graph()); },
                    false},
        ServiceCase{"elasticsearch",
                    [] {
                      return std::make_unique<ElasticSearchService>(&Graph(),
                                                                    false);
                    },
                    false},
        ServiceCase{"es_aliases",
                    [] {
                      return std::make_unique<ElasticSearchService>(&Graph(),
                                                                    true);
                    },
                    true},
        ServiceCase{"lsh",
                    [] { return std::make_unique<LshService>(&Graph()); },
                    false},
        ServiceCase{"exact",
                    [] { return std::make_unique<ExactMatchService>(&Graph()); },
                    false},
        ServiceCase{"qgram",
                    [] { return std::make_unique<QGramService>(&Graph()); },
                    false},
        ServiceCase{"levenshtein",
                    [] {
                      return std::make_unique<LevenshteinService>(&Graph());
                    },
                    false},
        ServiceCase{"wikidata_api",
                    [] {
                      return std::make_unique<WikidataApiService>(&Graph());
                    },
                    true},
        ServiceCase{"searx",
                    [] { return std::make_unique<SearxApiService>(&Graph()); },
                    true}),
    [](const ::testing::TestParamInfo<ServiceCase>& info) {
      return info.param.name;
    });

TEST(RemoteServiceTest, ModeledDelayAccumulatesAndResets) {
  WikidataApiService service(&Graph());
  EXPECT_EQ(service.modeled_delay_seconds(), 0.0);
  (void)service.Lookup("anything", 5);
  const double after_one = service.modeled_delay_seconds();
  EXPECT_GT(after_one, 0.0);
  service.ResetModeledDelay();
  EXPECT_EQ(service.modeled_delay_seconds(), 0.0);
}

TEST(RemoteServiceTest, RateLimitShapesBulkDelay) {
  RemoteModel model;
  model.rtt_seconds = 0.1;
  model.service_seconds = 0.0;
  model.max_parallel_requests = 5;
  WikidataApiService service(&Graph(), model);
  std::vector<std::string> queries(10, "x");
  (void)service.BulkLookup(queries, 5);
  // 10 queries / 5 parallel = 2 waves of 0.1s.
  EXPECT_NEAR(service.modeled_delay_seconds(), 0.2, 1e-9);
}

TEST(EsHostedTest, BulkCheaperPerQueryThanSingles) {
  ExactMatchService a(&Graph());
  ExactMatchService b(&Graph());
  std::vector<std::string> queries(100, "x");
  (void)a.BulkLookup(queries, 5);
  for (const auto& q : queries) (void)b.Lookup(q, 5);
  EXPECT_LT(a.modeled_delay_seconds(), b.modeled_delay_seconds());
}

// --- Tasks -------------------------------------------------------------------------

TEST(TasksTest, CeaNearPerfectWithAliasAwareService) {
  const kg::TabularDataset dataset = CleanDataset();
  ElasticSearchService service(&Graph(), /*index_aliases=*/true);
  const TaskResult result = RunCea(dataset, Graph(), &service);
  EXPECT_GT(result.metrics.F1(), 0.95);
  EXPECT_GT(result.num_lookups, 0);
  EXPECT_GT(result.lookup_seconds, 0.0);
}

TEST(TasksTest, CtaVotesColumnTypes) {
  const kg::TabularDataset dataset = CleanDataset();
  ElasticSearchService service(&Graph(), /*index_aliases=*/true);
  const TaskResult result = RunCta(dataset, Graph(), &service);
  EXPECT_GT(result.metrics.F1(), 0.95);
}

TEST(TasksTest, CeaDegradesWithExactMatchUnderNoise) {
  kg::TabularDataset dataset = CleanDataset();
  Rng rng(9);
  kg::InjectCellNoise(&dataset, 0.5, &rng);
  ExactMatchService service(&Graph());
  const TaskResult noisy = RunCea(dataset, Graph(), &service);
  ExactMatchService service2(&Graph());
  const TaskResult clean = RunCea(CleanDataset(), Graph(), &service2);
  EXPECT_LT(noisy.metrics.F1(), clean.metrics.F1());
}

TEST(TasksTest, EntityDisambiguationUsesCoherence) {
  const kg::TabularDataset dataset = CleanDataset();
  ElasticSearchService service(&Graph(), /*index_aliases=*/true);
  const TaskResult result =
      RunEntityDisambiguation(dataset, Graph(), &service);
  EXPECT_GT(result.metrics.F1(), 0.9);
}

TEST(TasksTest, DataRepairImputesBlankedCells) {
  kg::TabularDataset dataset = CleanDataset();
  Rng rng(10);
  const int64_t blanked = kg::BlankCells(&dataset, 0.10, &rng);
  ASSERT_GT(blanked, 0);
  ElasticSearchService service(&Graph(), /*index_aliases=*/true);
  const TaskResult result = RunDataRepair(dataset, Graph(), &service);
  // Relation columns are imputable; filler columns are not — recall is
  // bounded but precision should be decent.
  EXPECT_GT(result.metrics.tp, 0);
  EXPECT_GT(result.metrics.Precision(), 0.5);
}

TEST(TasksTest, LookupBenchmarkCountsHits) {
  std::vector<std::string> queries = {Graph().entity(0).label, "zzz-nothing"};
  std::vector<kg::EntityId> gold = {0, 1};
  ElasticSearchService service(&Graph(), false);
  const TaskResult result = RunLookupBenchmark(queries, gold, &service, 10);
  EXPECT_EQ(result.metrics.tp, 1);
  EXPECT_EQ(result.num_lookups, 2);
}

// --- Annotation systems ---------------------------------------------------------------

TEST(SystemsTest, ConfigsDiffer) {
  EXPECT_EQ(BbwConfig().name, "bbw");
  EXPECT_EQ(MantisTableConfig().name, "MantisTable");
  EXPECT_EQ(JenTabConfig().name, "JenTab");
  EXPECT_TRUE(JenTabConfig().exact_first);
  EXPECT_FALSE(BbwConfig().type_filter);
  EXPECT_TRUE(MantisTableConfig().type_filter);
}

TEST(SystemsTest, OriginalLookupFactories) {
  EXPECT_EQ(MakeOriginalLookup(BbwConfig(), Graph())->name(), "SearX");
  EXPECT_EQ(MakeOriginalLookup(MantisTableConfig(), Graph())->name(),
            "ElasticSearch");
  EXPECT_EQ(MakeOriginalLookup(JenTabConfig(), Graph())->name(),
            "WikidataAPI");
}

class SystemPipelineTest
    : public ::testing::TestWithParam<SystemConfig (*)()> {};

TEST_P(SystemPipelineTest, HighFOnCleanDataWithShippedLookup) {
  const SystemConfig config = GetParam()();
  auto service = MakeOriginalLookup(config, Graph());
  AnnotationSystem system(config, &Graph(), service.get());
  const kg::TabularDataset dataset = CleanDataset();
  EXPECT_GT(system.RunCea(dataset).metrics.F1(), 0.9) << config.name;
  EXPECT_GT(system.RunCta(dataset).metrics.F1(), 0.9) << config.name;
}

INSTANTIATE_TEST_SUITE_P(AllSystems, SystemPipelineTest,
                         ::testing::Values(&BbwConfig, &MantisTableConfig,
                                           &JenTabConfig),
                         [](const auto& info) {
                           return info.param().name;
                         });

TEST(SystemsTest, LookupTimeInstrumented) {
  const SystemConfig config = MantisTableConfig();
  auto service = MakeOriginalLookup(config, Graph());
  AnnotationSystem system(config, &Graph(), service.get());
  const TaskResult result = system.RunCea(CleanDataset());
  EXPECT_GT(result.num_lookups, 0);
  EXPECT_GT(result.lookup_seconds, 0.0);
}

}  // namespace
}  // namespace emblookup::apps
