#include <cmath>
#include <cstdio>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "core/emblookup.h"
#include "core/encoder.h"
#include "core/entity_index.h"
#include "core/trainer.h"
#include "core/triplets.h"
#include "kg/synthetic_kg.h"

namespace emblookup::core {
namespace {

const kg::KnowledgeGraph& SmallKg() {
  static const kg::KnowledgeGraph& graph = [] {
    kg::SyntheticKgOptions options;
    options.num_entities = 300;
    options.seed = 21;
    return *new kg::KnowledgeGraph(kg::GenerateSyntheticKg(options));
  }();
  return graph;
}

// --- Encoder -----------------------------------------------------------------

TEST(EncoderTest, OutputShapeAndUnitNorm) {
  EncoderConfig config;
  EmbLookupEncoder encoder(config, nullptr);
  tensor::NoGradGuard guard;
  tensor::Tensor out = encoder.EncodeBatch({"germany", "east berlin"});
  EXPECT_EQ(out.dim(0), 2);
  EXPECT_EQ(out.dim(1), config.embedding_dim);
  for (int64_t i = 0; i < 2; ++i) {
    float sq = 0;
    for (int64_t j = 0; j < out.dim(1); ++j) {
      const float v = out.data()[i * out.dim(1) + j];
      sq += v * v;
    }
    EXPECT_NEAR(sq, 1.0f, 1e-3f);
  }
}

TEST(EncoderTest, DeterministicForSeed) {
  EncoderConfig config;
  EmbLookupEncoder a(config, nullptr);
  EmbLookupEncoder b(config, nullptr);
  tensor::NoGradGuard guard;
  tensor::Tensor ea = a.EncodeBatch({"germany"});
  tensor::Tensor eb = b.EncodeBatch({"germany"});
  for (int64_t i = 0; i < ea.size(); ++i) {
    EXPECT_EQ(ea.data()[i], eb.data()[i]);
  }
}

TEST(EncoderTest, ConfigurableDimension) {
  EncoderConfig config;
  config.embedding_dim = 128;
  EmbLookupEncoder encoder(config, nullptr);
  tensor::NoGradGuard guard;
  EXPECT_EQ(encoder.EncodeBatch({"x"}).dim(1), 128);
}

TEST(EncoderTest, SaveLoadRoundTrip) {
  EncoderConfig config;
  EmbLookupEncoder a(config, nullptr);
  const std::string path = ::testing::TempDir() + "/encoder_params.bin";
  ASSERT_TRUE(a.Save(path).ok());
  config.seed = 999;  // Different init...
  EmbLookupEncoder b(config, nullptr);
  ASSERT_TRUE(b.Load(path).ok());  // ...but loaded weights must match.
  tensor::NoGradGuard guard;
  tensor::Tensor ea = a.EncodeBatch({"germany"});
  tensor::Tensor eb = b.EncodeBatch({"germany"});
  for (int64_t i = 0; i < ea.size(); ++i) {
    EXPECT_EQ(ea.data()[i], eb.data()[i]);
  }
  std::remove(path.c_str());
}

TEST(EncoderTest, GradientsFlowToAllParameters) {
  EncoderConfig config;
  EmbLookupEncoder encoder(config, nullptr);
  tensor::Tensor out = encoder.EncodeBatch({"germany", "berlin"});
  tensor::Mean(tensor::Mul(out, out)).Backward();
  // Fusion layers must receive gradient; conv layers may have sparsely
  // activated channels but the full parameter set is wired up.
  double total = 0.0;
  for (tensor::Tensor& p : encoder.Parameters()) {
    for (int64_t i = 0; i < p.size(); ++i) {
      total += std::abs(p.grad()[i]);
    }
  }
  EXPECT_GT(total, 0.0);
}

// --- Triplet mining -------------------------------------------------------------

TEST(TripletsTest, BudgetRespected) {
  MinerConfig config;
  config.triplets_per_entity = 10;
  const auto triplets = MineTriplets(SmallKg(), config);
  EXPECT_EQ(static_cast<int64_t>(triplets.size()),
            SmallKg().num_entities() * 10);
}

TEST(TripletsTest, AliasesAppearAsPositives) {
  MinerConfig config;
  config.triplets_per_entity = 12;
  const auto triplets = MineTriplets(SmallKg(), config);
  const kg::Entity& first = SmallKg().entity(0);
  ASSERT_FALSE(first.aliases.empty());
  bool found = false;
  for (const Triplet& t : triplets) {
    if (t.anchor == first.label && t.positive == first.aliases[0]) {
      found = true;
      break;
    }
  }
  EXPECT_TRUE(found);
}

TEST(TripletsTest, NegativesDifferFromAnchor) {
  MinerConfig config;
  config.triplets_per_entity = 5;
  const auto triplets = MineTriplets(SmallKg(), config);
  int64_t same = 0;
  for (const Triplet& t : triplets) {
    if (t.negative == t.anchor) ++same;
  }
  // Labels can collide (ambiguity), but the negative should essentially
  // never be the anchor string itself.
  EXPECT_LT(same, static_cast<int64_t>(triplets.size()) / 50 + 2);
}

TEST(TripletsTest, DeterministicForSeed) {
  MinerConfig config;
  config.triplets_per_entity = 4;
  const auto a = MineTriplets(SmallKg(), config);
  const auto b = MineTriplets(SmallKg(), config);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].anchor, b[i].anchor);
    EXPECT_EQ(a[i].positive, b[i].positive);
    EXPECT_EQ(a[i].negative, b[i].negative);
  }
}

// --- Trainer ---------------------------------------------------------------------

TEST(TrainerTest, LossDecreasesOnTinyTask) {
  EncoderConfig enc_config;
  enc_config.conv_channels = 4;
  enc_config.num_conv_layers = 2;
  enc_config.embedding_dim = 16;
  enc_config.fusion_hidden = 16;
  EmbLookupEncoder encoder(enc_config, nullptr);

  MinerConfig miner;
  miner.triplets_per_entity = 4;
  const auto triplets = MineTriplets(SmallKg(), miner);

  // Probe initial loss on a fixed batch.
  auto batch_loss = [&](EmbLookupEncoder* e) {
    std::vector<std::string> a, p, n;
    for (size_t i = 0; i < 64 && i < triplets.size(); ++i) {
      a.push_back(triplets[i].anchor);
      p.push_back(triplets[i].positive);
      n.push_back(triplets[i].negative);
    }
    tensor::NoGradGuard guard;
    return tensor::TripletLoss(e->EncodeBatch(a), e->EncodeBatch(p),
                               e->EncodeBatch(n), 0.4f)
        .item();
  };
  const float before = batch_loss(&encoder);

  TrainerConfig config;
  config.epochs = 4;
  TripletTrainer trainer(config);
  auto stats = trainer.Train(&encoder, triplets);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().epochs_run, 4);
  EXPECT_GT(stats.value().wall_seconds, 0.0);
  EXPECT_LT(batch_loss(&encoder), before);
}

TEST(TrainerTest, EmptyTripletsRejected) {
  EncoderConfig config;
  EmbLookupEncoder encoder(config, nullptr);
  TripletTrainer trainer(TrainerConfig{});
  EXPECT_FALSE(trainer.Train(&encoder, {}).ok());
}

// --- EntityIndex -----------------------------------------------------------------

TEST(EntityIndexTest, FlatAndPqAgreeOnTopCandidates) {
  EncoderConfig config;
  EmbLookupEncoder encoder(config, nullptr);
  IndexConfig flat_config;
  flat_config.compress = false;
  auto flat = EntityIndex::Build(SmallKg(), &encoder, flat_config);
  ASSERT_TRUE(flat.ok());
  IndexConfig pq_config;
  pq_config.compress = true;
  auto pq = EntityIndex::Build(SmallKg(), &encoder, pq_config);
  ASSERT_TRUE(pq.ok());
  EXPECT_FALSE(flat.value().compressed());
  EXPECT_TRUE(pq.value().compressed());
  EXPECT_EQ(flat.value().size(), SmallKg().num_entities());
  EXPECT_LT(pq.value().StorageBytes(), flat.value().StorageBytes() / 20);

  // Exact-label query: flat puts the entity first; PQ within a few.
  const std::string& label = SmallKg().entity(5).label;
  tensor::NoGradGuard guard;
  tensor::Tensor q = encoder.EncodeBatch({label});
  const auto exact = flat.value().Search(q.data(), 5);
  bool found = false;
  for (const auto& n : exact) found |= (n.id == 5);
  EXPECT_TRUE(found);
}

TEST(EntityIndexTest, PqRequiresDivisibleDim) {
  EncoderConfig config;
  config.embedding_dim = 60;  // Not divisible by pq_m=8.
  EmbLookupEncoder encoder(config, nullptr);
  IndexConfig index_config;
  index_config.compress = true;
  EXPECT_FALSE(EntityIndex::Build(SmallKg(), &encoder, index_config).ok());
}

// --- EmbLookup end-to-end -----------------------------------------------------------

class EmbLookupE2ETest : public ::testing::Test {
 protected:
  static EmbLookup* Model() {
    static EmbLookup* model = [] {
      EmbLookupOptions options;
      options.miner.triplets_per_entity = 8;
      options.trainer.epochs = 6;
      options.fasttext.epochs = 8;
      auto built = EmbLookup::TrainFromKg(SmallKg(), options);
      EXPECT_TRUE(built.ok());
      return std::move(built).value().release();
    }();
    return model;
  }
};

TEST_F(EmbLookupE2ETest, ExactLabelIsTopHit) {
  int64_t hits = 0, total = 0;
  for (kg::EntityId e = 0; e < SmallKg().num_entities(); e += 5) {
    const auto results = Model()->Lookup(SmallKg().entity(e).label, 5);
    ASSERT_FALSE(results.empty());
    // The label may be shared (ambiguity); accept any entity carrying it.
    for (const auto& r : results) {
      if (r.entity == e) {
        ++hits;
        break;
      }
    }
    ++total;
  }
  EXPECT_GT(static_cast<double>(hits) / total, 0.9);
}

TEST_F(EmbLookupE2ETest, ResultsSortedByDistance) {
  const auto results = Model()->Lookup("some query", 10);
  for (size_t i = 1; i < results.size(); ++i) {
    EXPECT_LE(results[i - 1].dist, results[i].dist);
  }
}

TEST_F(EmbLookupE2ETest, BulkLookupParallelMatchesSequential) {
  // The serving layer batches through the parallel bulk path; it must be
  // bit-identical to the sequential path (same encode batches, same scan).
  std::vector<std::string> queries;
  for (kg::EntityId e = 0; e < SmallKg().num_entities(); e += 2) {
    queries.push_back(SmallKg().entity(e).label);
  }
  const auto seq = Model()->BulkLookup(queries, 5, /*parallel=*/false);
  const auto par = Model()->BulkLookup(queries, 5, /*parallel=*/true);
  ASSERT_EQ(seq.size(), par.size());
  for (size_t i = 0; i < seq.size(); ++i) {
    ASSERT_EQ(seq[i].size(), par[i].size()) << "query " << i;
    for (size_t j = 0; j < seq[i].size(); ++j) {
      EXPECT_EQ(seq[i][j].entity, par[i][j].entity) << "query " << i;
      EXPECT_EQ(seq[i][j].dist, par[i][j].dist) << "query " << i;
    }
  }
}

TEST_F(EmbLookupE2ETest, RebuildIndexIsOnline) {
  // RebuildIndex swaps a snapshot in place of the old index; a snapshot
  // acquired before the swap must stay searchable afterwards (RCU).
  const auto before = Model()->IndexSnapshot();
  IndexConfig config;
  config.compress = false;
  config.kind = IndexKind::kIvfFlat;
  config.ivf_lists = 8;
  config.ivf_nprobe = 8;
  ASSERT_TRUE(Model()->RebuildIndex(config).ok());
  EXPECT_EQ(Model()->index().kind(), IndexKind::kIvfFlat);
  EXPECT_NE(before.get(), Model()->IndexSnapshot().get());
  const auto emb = Model()->Embed(SmallKg().entity(0).label);
  EXPECT_FALSE(before->Search(emb.data(), 3).empty());

  // Restore the default index for any test running after this one.
  IndexConfig original;
  ASSERT_TRUE(Model()->RebuildIndex(original).ok());
}

TEST_F(EmbLookupE2ETest, BulkMatchesSingle) {
  std::vector<std::string> queries = {SmallKg().entity(1).label,
                                      SmallKg().entity(2).label};
  const auto bulk = Model()->BulkLookup(queries, 3, /*parallel=*/false);
  ASSERT_EQ(bulk.size(), 2u);
  for (size_t i = 0; i < queries.size(); ++i) {
    const auto single = Model()->Lookup(queries[i], 3);
    ASSERT_EQ(single.size(), bulk[i].size());
    for (size_t j = 0; j < single.size(); ++j) {
      EXPECT_EQ(single[j].entity, bulk[i][j].entity);
    }
  }
}

TEST_F(EmbLookupE2ETest, ParallelBulkMatchesSequential) {
  std::vector<std::string> queries;
  for (kg::EntityId e = 0; e < 50; ++e) {
    queries.push_back(SmallKg().entity(e).label);
  }
  const auto seq = Model()->BulkLookup(queries, 5, false);
  const auto par = Model()->BulkLookup(queries, 5, true);
  for (size_t i = 0; i < queries.size(); ++i) {
    ASSERT_EQ(seq[i].size(), par[i].size());
    for (size_t j = 0; j < seq[i].size(); ++j) {
      EXPECT_EQ(seq[i][j].entity, par[i][j].entity);
    }
  }
}

TEST_F(EmbLookupE2ETest, RebuildIndexTogglesCompression) {
  ASSERT_TRUE(Model()->index().compressed());
  IndexConfig nc;
  nc.compress = false;
  ASSERT_TRUE(Model()->RebuildIndex(nc).ok());
  EXPECT_FALSE(Model()->index().compressed());
  IndexConfig pq;
  pq.compress = true;
  ASSERT_TRUE(Model()->RebuildIndex(pq).ok());
  EXPECT_TRUE(Model()->index().compressed());
}

TEST_F(EmbLookupE2ETest, SaveAndLoadModelReproducesLookups) {
  const std::string path = ::testing::TempDir() + "/el_model.bin";
  ASSERT_TRUE(Model()->SaveModel(path).ok());
  EmbLookupOptions options;
  options.miner.triplets_per_entity = 8;
  options.trainer.epochs = 6;
  options.fasttext.epochs = 8;
  auto loaded = EmbLookup::LoadFromKg(SmallKg(), options, path);
  ASSERT_TRUE(loaded.ok());
  const std::string& query = SmallKg().entity(3).label;
  const auto a = Model()->Lookup(query, 5);
  const auto b = loaded.value()->Lookup(query, 5);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].entity, b[i].entity);
  }
  std::remove(path.c_str());
}

TEST_F(EmbLookupE2ETest, EmbedIsUnitNorm) {
  const auto v = Model()->Embed("whatever string");
  float sq = 0;
  for (float x : v) sq += x * x;
  EXPECT_NEAR(sq, 1.0f, 1e-3f);
}

}  // namespace
}  // namespace emblookup::core
