#include <cmath>
#include <cstdio>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/emblookup.h"
#include "core/encoder.h"
#include "core/encoder_cache.h"
#include "core/entity_index.h"
#include "core/trainer.h"
#include "core/triplets.h"
#include "kg/noise.h"
#include "kg/synthetic_kg.h"

namespace emblookup::core {
namespace {

const kg::KnowledgeGraph& SmallKg() {
  static const kg::KnowledgeGraph& graph = [] {
    kg::SyntheticKgOptions options;
    options.num_entities = 300;
    options.seed = 21;
    return *new kg::KnowledgeGraph(kg::GenerateSyntheticKg(options));
  }();
  return graph;
}

// --- Encoder -----------------------------------------------------------------

TEST(EncoderTest, OutputShapeAndUnitNorm) {
  EncoderConfig config;
  EmbLookupEncoder encoder(config, nullptr);
  tensor::NoGradGuard guard;
  tensor::Tensor out = encoder.EncodeBatch({"germany", "east berlin"});
  EXPECT_EQ(out.dim(0), 2);
  EXPECT_EQ(out.dim(1), config.embedding_dim);
  for (int64_t i = 0; i < 2; ++i) {
    float sq = 0;
    for (int64_t j = 0; j < out.dim(1); ++j) {
      const float v = out.data()[i * out.dim(1) + j];
      sq += v * v;
    }
    EXPECT_NEAR(sq, 1.0f, 1e-3f);
  }
}

TEST(EncoderTest, DeterministicForSeed) {
  EncoderConfig config;
  EmbLookupEncoder a(config, nullptr);
  EmbLookupEncoder b(config, nullptr);
  tensor::NoGradGuard guard;
  tensor::Tensor ea = a.EncodeBatch({"germany"});
  tensor::Tensor eb = b.EncodeBatch({"germany"});
  for (int64_t i = 0; i < ea.size(); ++i) {
    EXPECT_EQ(ea.data()[i], eb.data()[i]);
  }
}

TEST(EncoderTest, ConfigurableDimension) {
  EncoderConfig config;
  config.embedding_dim = 128;
  EmbLookupEncoder encoder(config, nullptr);
  tensor::NoGradGuard guard;
  EXPECT_EQ(encoder.EncodeBatch({"x"}).dim(1), 128);
}

TEST(EncoderTest, SaveLoadRoundTrip) {
  EncoderConfig config;
  EmbLookupEncoder a(config, nullptr);
  const std::string path = ::testing::TempDir() + "/encoder_params.bin";
  ASSERT_TRUE(a.Save(path).ok());
  config.seed = 999;  // Different init...
  EmbLookupEncoder b(config, nullptr);
  ASSERT_TRUE(b.Load(path).ok());  // ...but loaded weights must match.
  tensor::NoGradGuard guard;
  tensor::Tensor ea = a.EncodeBatch({"germany"});
  tensor::Tensor eb = b.EncodeBatch({"germany"});
  for (int64_t i = 0; i < ea.size(); ++i) {
    EXPECT_EQ(ea.data()[i], eb.data()[i]);
  }
  std::remove(path.c_str());
}

TEST(EncoderTest, GradientsFlowToAllParameters) {
  EncoderConfig config;
  EmbLookupEncoder encoder(config, nullptr);
  tensor::Tensor out = encoder.EncodeBatch({"germany", "berlin"});
  tensor::Mean(tensor::Mul(out, out)).Backward();
  // Fusion layers must receive gradient; conv layers may have sparsely
  // activated channels but the full parameter set is wired up.
  double total = 0.0;
  for (tensor::Tensor& p : encoder.Parameters()) {
    for (int64_t i = 0; i < p.size(); ++i) {
      total += std::abs(p.grad()[i]);
    }
  }
  EXPECT_GT(total, 0.0);
}

TEST(EncoderTest, EmptyBatchReturnsZeroRows) {
  EncoderConfig config;
  EmbLookupEncoder encoder(config, nullptr);
  tensor::NoGradGuard guard;
  tensor::Tensor out = encoder.EncodeBatch({});
  EXPECT_EQ(out.dim(0), 0);
  EXPECT_EQ(out.dim(1), config.embedding_dim);
  EXPECT_EQ(out.size(), 0);
}

TEST(EncoderTest, FastPathMatchesReferenceWithinTolerance) {
  // The batched SIMD path fuses multiply-adds and accumulates GEMM terms
  // in a different order than the autograd reference, so agreement is to
  // float tolerance, not bitwise (DESIGN.md §13). Includes a max-length
  // mention (> max_len, truncated) and the empty string.
  EncoderConfig config;
  EmbLookupEncoder encoder(config, nullptr);
  const std::vector<std::string> mentions = {
      "germany", "east berlin", "", "x",
      std::string(100, 'q') /* truncated to max_len */,
      "federal republic of germany"};
  tensor::NoGradGuard guard;
  tensor::Tensor fast = encoder.EncodeBatch(mentions);
  tensor::Tensor ref = encoder.EncodeBatchReference(mentions);
  ASSERT_EQ(fast.size(), ref.size());
  for (int64_t i = 0; i < ref.size(); ++i) {
    EXPECT_NEAR(fast.data()[i], ref.data()[i], 1e-4f) << "element " << i;
  }
}

TEST(EncoderTest, FastPathBatchSplitInvariant) {
  // Re-batching queries must not change embeddings bitwise: the batched
  // conv GEMM windows never cross item boundaries, and each row's
  // accumulation order is batch-independent. Odd batch size on purpose.
  EncoderConfig config;
  EmbLookupEncoder encoder(config, nullptr);
  const std::vector<std::string> mentions = {"germany",     "east berlin",
                                             "deutschland", "bundesrepublik",
                                             "g",           "berlin wall",
                                             "weimar"};
  tensor::NoGradGuard guard;
  tensor::Tensor whole = encoder.EncodeBatch(mentions);
  const int64_t dim = config.embedding_dim;
  for (size_t i = 0; i < mentions.size(); ++i) {
    tensor::Tensor single = encoder.EncodeBatch({mentions[i]});
    for (int64_t j = 0; j < dim; ++j) {
      EXPECT_EQ(single.data()[j],
                whole.data()[static_cast<int64_t>(i) * dim + j])
          << "mention " << i << " dim " << j;
    }
  }
}

TEST(EncoderTest, LoadBumpsGeneration) {
  EncoderConfig config;
  EmbLookupEncoder a(config, nullptr);
  const std::string path = ::testing::TempDir() + "/encoder_gen.bin";
  ASSERT_TRUE(a.Save(path).ok());
  const uint64_t before = a.generation();
  ASSERT_TRUE(a.Load(path).ok());
  EXPECT_EQ(a.generation(), before + 1);
  std::remove(path.c_str());
}

// --- EncoderCache ------------------------------------------------------------

TEST(EncoderCacheTest, MissThenHitRoundTrips) {
  EncoderCache cache(4, EncoderCacheOptions{});
  const float emb[4] = {0.1f, 0.2f, 0.3f, 0.4f};
  float out[4] = {};
  EXPECT_FALSE(cache.Get("berlin", 1, out));
  cache.Put("berlin", 1, emb);
  ASSERT_TRUE(cache.Get("berlin", 1, out));
  for (int i = 0; i < 4; ++i) EXPECT_EQ(out[i], emb[i]);
  const EncoderCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GT(stats.bytes, 0u);
}

TEST(EncoderCacheTest, KeysCollapseUnderNormalization) {
  // "  East  BERLIN " and "east berlin" encode identically (the alphabet
  // lowercases, whitespace collapses), so they must share one cache entry.
  EncoderCache cache(2, EncoderCacheOptions{});
  const float emb[2] = {1.0f, 2.0f};
  cache.Put("  East  BERLIN ", 1, emb);
  float out[2] = {};
  EXPECT_TRUE(cache.Get("east berlin", 1, out));
  EXPECT_EQ(out[0], 1.0f);
  EXPECT_EQ(cache.Stats().entries, 1u);
}

TEST(EncoderCacheTest, GenerationMismatchDropsEntry) {
  EncoderCache cache(2, EncoderCacheOptions{});
  const float emb[2] = {1.0f, 2.0f};
  cache.Put("berlin", 1, emb);
  float out[2] = {};
  // Probe under a newer generation: stale entry dropped, counted as miss.
  EXPECT_FALSE(cache.Get("berlin", 2, out));
  const EncoderCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.stale_drops, 1u);
  EXPECT_EQ(stats.entries, 0u);
  // Refill under the new generation works.
  cache.Put("berlin", 2, emb);
  EXPECT_TRUE(cache.Get("berlin", 2, out));
}

TEST(EncoderCacheTest, CapacityEvictsLeastRecentlyUsed) {
  EncoderCacheOptions options;
  options.num_shards = 1;  // One LRU so eviction order is deterministic.
  options.max_entries = 2;
  EncoderCache cache(1, options);
  const float emb[1] = {7.0f};
  cache.Put("a", 1, emb);
  cache.Put("b", 1, emb);
  float out[1] = {};
  ASSERT_TRUE(cache.Get("a", 1, out));  // Promote "a": "b" is now LRU.
  cache.Put("c", 1, emb);               // Evicts "b".
  EXPECT_TRUE(cache.Get("a", 1, out));
  EXPECT_FALSE(cache.Get("b", 1, out));
  EXPECT_TRUE(cache.Get("c", 1, out));
  EXPECT_EQ(cache.Stats().evictions, 1u);
}

TEST(EncoderCacheConcurrencyTest, ConcurrentGetPutClearIsRaceFree) {
  // Hammered under TSan by ci.sh: shard mutexes must make concurrent
  // probes, fills, evictions and clears data-race-free.
  EncoderCacheOptions options;
  options.max_entries = 64;
  EncoderCache cache(8, options);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&cache, t] {
      float emb[8];
      float out[8];
      for (int i = 0; i < 500; ++i) {
        const std::string key = "mention " + std::to_string((t * 7 + i) % 96);
        for (int j = 0; j < 8; ++j) emb[j] = static_cast<float>(i + j);
        if (!cache.Get(key, 1, out)) cache.Put(key, 1, emb);
        if (i % 128 == 0 && t == 0) cache.Clear();
      }
    });
  }
  for (auto& th : threads) th.join();
  const EncoderCacheStats stats = cache.Stats();
  EXPECT_GT(stats.hits + stats.misses, 0u);
}

TEST(EncoderCacheTest, ClearDropsEverythingWithoutEvictionCount) {
  EncoderCache cache(1, EncoderCacheOptions{});
  const float emb[1] = {7.0f};
  cache.Put("a", 1, emb);
  cache.Clear();
  float out[1] = {};
  EXPECT_FALSE(cache.Get("a", 1, out));
  EXPECT_EQ(cache.Stats().entries, 0u);
  EXPECT_EQ(cache.Stats().evictions, 0u);
}

// --- Triplet mining -------------------------------------------------------------

TEST(TripletsTest, BudgetRespected) {
  MinerConfig config;
  config.triplets_per_entity = 10;
  const auto triplets = MineTriplets(SmallKg(), config);
  EXPECT_EQ(static_cast<int64_t>(triplets.size()),
            SmallKg().num_entities() * 10);
}

TEST(TripletsTest, AliasesAppearAsPositives) {
  MinerConfig config;
  config.triplets_per_entity = 12;
  const auto triplets = MineTriplets(SmallKg(), config);
  const kg::Entity& first = SmallKg().entity(0);
  ASSERT_FALSE(first.aliases.empty());
  bool found = false;
  for (const Triplet& t : triplets) {
    if (t.anchor == first.label && t.positive == first.aliases[0]) {
      found = true;
      break;
    }
  }
  EXPECT_TRUE(found);
}

TEST(TripletsTest, NegativesDifferFromAnchor) {
  MinerConfig config;
  config.triplets_per_entity = 5;
  const auto triplets = MineTriplets(SmallKg(), config);
  int64_t same = 0;
  for (const Triplet& t : triplets) {
    if (t.negative == t.anchor) ++same;
  }
  // Labels can collide (ambiguity), but the negative should essentially
  // never be the anchor string itself.
  EXPECT_LT(same, static_cast<int64_t>(triplets.size()) / 50 + 2);
}

TEST(TripletsTest, DeterministicForSeed) {
  MinerConfig config;
  config.triplets_per_entity = 4;
  const auto a = MineTriplets(SmallKg(), config);
  const auto b = MineTriplets(SmallKg(), config);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].anchor, b[i].anchor);
    EXPECT_EQ(a[i].positive, b[i].positive);
    EXPECT_EQ(a[i].negative, b[i].negative);
  }
}

// --- Trainer ---------------------------------------------------------------------

TEST(TrainerTest, LossDecreasesOnTinyTask) {
  EncoderConfig enc_config;
  enc_config.conv_channels = 4;
  enc_config.num_conv_layers = 2;
  enc_config.embedding_dim = 16;
  enc_config.fusion_hidden = 16;
  EmbLookupEncoder encoder(enc_config, nullptr);

  MinerConfig miner;
  miner.triplets_per_entity = 4;
  const auto triplets = MineTriplets(SmallKg(), miner);

  // Probe initial loss on a fixed batch.
  auto batch_loss = [&](EmbLookupEncoder* e) {
    std::vector<std::string> a, p, n;
    for (size_t i = 0; i < 64 && i < triplets.size(); ++i) {
      a.push_back(triplets[i].anchor);
      p.push_back(triplets[i].positive);
      n.push_back(triplets[i].negative);
    }
    tensor::NoGradGuard guard;
    return tensor::TripletLoss(e->EncodeBatch(a), e->EncodeBatch(p),
                               e->EncodeBatch(n), 0.4f)
        .item();
  };
  const float before = batch_loss(&encoder);

  TrainerConfig config;
  config.epochs = 4;
  TripletTrainer trainer(config);
  auto stats = trainer.Train(&encoder, triplets);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().epochs_run, 4);
  EXPECT_GT(stats.value().wall_seconds, 0.0);
  EXPECT_LT(batch_loss(&encoder), before);
}

TEST(TrainerTest, EmptyTripletsRejected) {
  EncoderConfig config;
  EmbLookupEncoder encoder(config, nullptr);
  TripletTrainer trainer(TrainerConfig{});
  EXPECT_FALSE(trainer.Train(&encoder, {}).ok());
}

// --- EntityIndex -----------------------------------------------------------------

TEST(EntityIndexTest, FlatAndPqAgreeOnTopCandidates) {
  EncoderConfig config;
  EmbLookupEncoder encoder(config, nullptr);
  IndexConfig flat_config;
  flat_config.compress = false;
  auto flat = EntityIndex::Build(SmallKg(), &encoder, flat_config);
  ASSERT_TRUE(flat.ok());
  IndexConfig pq_config;
  pq_config.compress = true;
  auto pq = EntityIndex::Build(SmallKg(), &encoder, pq_config);
  ASSERT_TRUE(pq.ok());
  EXPECT_FALSE(flat.value().compressed());
  EXPECT_TRUE(pq.value().compressed());
  EXPECT_EQ(flat.value().size(), SmallKg().num_entities());
  EXPECT_LT(pq.value().StorageBytes(), flat.value().StorageBytes() / 20);

  // Exact-label query: flat puts the entity first; PQ within a few.
  const std::string& label = SmallKg().entity(5).label;
  tensor::NoGradGuard guard;
  tensor::Tensor q = encoder.EncodeBatch({label});
  const auto exact = flat.value().Search(q.data(), 5);
  bool found = false;
  for (const auto& n : exact) found |= (n.id == 5);
  EXPECT_TRUE(found);
}

TEST(EntityIndexTest, PqRequiresDivisibleDim) {
  EncoderConfig config;
  config.embedding_dim = 60;  // Not divisible by pq_m=8.
  EmbLookupEncoder encoder(config, nullptr);
  IndexConfig index_config;
  index_config.compress = true;
  EXPECT_FALSE(EntityIndex::Build(SmallKg(), &encoder, index_config).ok());
}

// --- EmbLookup end-to-end -----------------------------------------------------------

class EmbLookupE2ETest : public ::testing::Test {
 protected:
  static EmbLookup* Model() {
    static EmbLookup* model = [] {
      EmbLookupOptions options;
      options.miner.triplets_per_entity = 8;
      options.trainer.epochs = 6;
      options.fasttext.epochs = 8;
      auto built = EmbLookup::TrainFromKg(SmallKg(), options);
      EXPECT_TRUE(built.ok());
      return std::move(built).value().release();
    }();
    return model;
  }
};

TEST_F(EmbLookupE2ETest, ExactLabelIsTopHit) {
  int64_t hits = 0, total = 0;
  for (kg::EntityId e = 0; e < SmallKg().num_entities(); e += 5) {
    const auto results = Model()->Lookup(SmallKg().entity(e).label, 5);
    ASSERT_FALSE(results.empty());
    // The label may be shared (ambiguity); accept any entity carrying it.
    for (const auto& r : results) {
      if (r.entity == e) {
        ++hits;
        break;
      }
    }
    ++total;
  }
  EXPECT_GT(static_cast<double>(hits) / total, 0.9);
}

TEST_F(EmbLookupE2ETest, ResultsSortedByDistance) {
  const auto results = Model()->Lookup("some query", 10);
  for (size_t i = 1; i < results.size(); ++i) {
    EXPECT_LE(results[i - 1].dist, results[i].dist);
  }
}

TEST_F(EmbLookupE2ETest, BulkLookupParallelMatchesSequential) {
  // The serving layer batches through the parallel bulk path; it must be
  // bit-identical to the sequential path (same encode batches, same scan).
  std::vector<std::string> queries;
  for (kg::EntityId e = 0; e < SmallKg().num_entities(); e += 2) {
    queries.push_back(SmallKg().entity(e).label);
  }
  const auto seq = Model()->BulkLookup(queries, 5, /*parallel=*/false);
  const auto par = Model()->BulkLookup(queries, 5, /*parallel=*/true);
  ASSERT_EQ(seq.size(), par.size());
  for (size_t i = 0; i < seq.size(); ++i) {
    ASSERT_EQ(seq[i].size(), par[i].size()) << "query " << i;
    for (size_t j = 0; j < seq[i].size(); ++j) {
      EXPECT_EQ(seq[i][j].entity, par[i][j].entity) << "query " << i;
      EXPECT_EQ(seq[i][j].dist, par[i][j].dist) << "query " << i;
    }
  }
}

TEST_F(EmbLookupE2ETest, RebuildIndexIsOnline) {
  // RebuildIndex swaps a snapshot in place of the old index; a snapshot
  // acquired before the swap must stay searchable afterwards (RCU).
  const auto before = Model()->IndexSnapshot();
  IndexConfig config;
  config.compress = false;
  config.kind = IndexKind::kIvfFlat;
  config.ivf_lists = 8;
  config.ivf_nprobe = 8;
  ASSERT_TRUE(Model()->RebuildIndex(config).ok());
  EXPECT_EQ(Model()->index().kind(), IndexKind::kIvfFlat);
  EXPECT_NE(before.get(), Model()->IndexSnapshot().get());
  const auto emb = Model()->Embed(SmallKg().entity(0).label);
  EXPECT_FALSE(before->Search(emb.data(), 3).empty());

  // Restore the default index for any test running after this one.
  IndexConfig original;
  ASSERT_TRUE(Model()->RebuildIndex(original).ok());
}

TEST_F(EmbLookupE2ETest, BulkMatchesSingle) {
  std::vector<std::string> queries = {SmallKg().entity(1).label,
                                      SmallKg().entity(2).label};
  const auto bulk = Model()->BulkLookup(queries, 3, /*parallel=*/false);
  ASSERT_EQ(bulk.size(), 2u);
  for (size_t i = 0; i < queries.size(); ++i) {
    const auto single = Model()->Lookup(queries[i], 3);
    ASSERT_EQ(single.size(), bulk[i].size());
    for (size_t j = 0; j < single.size(); ++j) {
      EXPECT_EQ(single[j].entity, bulk[i][j].entity);
    }
  }
}

TEST_F(EmbLookupE2ETest, ParallelBulkMatchesSequential) {
  std::vector<std::string> queries;
  for (kg::EntityId e = 0; e < 50; ++e) {
    queries.push_back(SmallKg().entity(e).label);
  }
  const auto seq = Model()->BulkLookup(queries, 5, false);
  const auto par = Model()->BulkLookup(queries, 5, true);
  for (size_t i = 0; i < queries.size(); ++i) {
    ASSERT_EQ(seq[i].size(), par[i].size());
    for (size_t j = 0; j < seq[i].size(); ++j) {
      EXPECT_EQ(seq[i][j].entity, par[i][j].entity);
    }
  }
}

TEST_F(EmbLookupE2ETest, RebuildIndexTogglesCompression) {
  ASSERT_TRUE(Model()->index().compressed());
  IndexConfig nc;
  nc.compress = false;
  ASSERT_TRUE(Model()->RebuildIndex(nc).ok());
  EXPECT_FALSE(Model()->index().compressed());
  IndexConfig pq;
  pq.compress = true;
  ASSERT_TRUE(Model()->RebuildIndex(pq).ok());
  EXPECT_TRUE(Model()->index().compressed());
}

TEST_F(EmbLookupE2ETest, SaveAndLoadModelReproducesLookups) {
  const std::string path = ::testing::TempDir() + "/el_model.bin";
  ASSERT_TRUE(Model()->SaveModel(path).ok());
  EmbLookupOptions options;
  options.miner.triplets_per_entity = 8;
  options.trainer.epochs = 6;
  options.fasttext.epochs = 8;
  auto loaded = EmbLookup::LoadFromKg(SmallKg(), options, path);
  ASSERT_TRUE(loaded.ok());
  const std::string& query = SmallKg().entity(3).label;
  const auto a = Model()->Lookup(query, 5);
  const auto b = loaded.value()->Lookup(query, 5);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].entity, b[i].entity);
  }
  std::remove(path.c_str());
}

TEST_F(EmbLookupE2ETest, QualityRegressionFig3Fig4Floors) {
  // Quality floors for the figure benchmarks under the batched SIMD
  // encode path (which now feeds both index build and queries): the
  // fig. 3 proxy — exact-label top-5 hit rate of the trained model — and
  // the fig. 4 measure — PQ recall against the flat index as ground
  // truth on typo'd queries. Guards the encode-path numerics end to end:
  // a fast-path regression larger than the documented float tolerance
  // shows up here before it shows up in the paper figures.
  IndexConfig flat_config;
  flat_config.compress = false;
  auto flat = EntityIndex::Build(SmallKg(), Model()->encoder(), flat_config,
                                 Model()->pool());
  ASSERT_TRUE(flat.ok());
  IndexConfig pq_config;
  pq_config.compress = true;
  auto pq = EntityIndex::Build(SmallKg(), Model()->encoder(), pq_config,
                               Model()->pool());
  ASSERT_TRUE(pq.ok());

  Rng rng(17);
  double recall_sum = 0.0;
  int64_t queries = 0;
  const int64_t k = 20;
  for (kg::EntityId e = 0; e < SmallKg().num_entities(); e += 7) {
    const auto q =
        Model()->Embed(kg::RandomTypo(SmallKg().entity(e).label, &rng, 1));
    const auto truth = flat.value().Search(q.data(), k);
    const auto approx = pq.value().Search(q.data(), k);
    ASSERT_FALSE(truth.empty());
    std::set<kg::EntityId> truth_ids;
    for (const auto& n : truth) truth_ids.insert(n.id);
    int64_t inter = 0;
    for (const auto& n : approx) inter += truth_ids.count(n.id);
    recall_sum += static_cast<double>(inter) /
                  static_cast<double>(truth.size());
    ++queries;
  }
  EXPECT_GT(recall_sum / static_cast<double>(queries), 0.6)
      << "fig. 4 PQ recall@20 regressed";
}

TEST_F(EmbLookupE2ETest, EncodeCacheIsTransparentToLookups) {
  // A cache-enabled instance must return exactly the results of the
  // cache-free Model(), on both the cold (fill) and warm (hit) pass — the
  // cached embedding is bitwise what the forward recomputes.
  const std::string path = ::testing::TempDir() + "/el_model_cache.bin";
  ASSERT_TRUE(Model()->SaveModel(path).ok());
  EmbLookupOptions options;
  options.miner.triplets_per_entity = 8;
  options.trainer.epochs = 6;
  options.fasttext.epochs = 8;
  options.encode_cache_entries = 1024;
  auto loaded = EmbLookup::LoadFromKg(SmallKg(), options, path);
  ASSERT_TRUE(loaded.ok());
  EmbLookup* cached = loaded.value().get();
  ASSERT_NE(cached->encode_cache(), nullptr);

  std::vector<std::string> queries;
  for (kg::EntityId e = 0; e < 40; ++e) {
    queries.push_back(SmallKg().entity(e).label);
  }
  // Cold pass fills the cache; warm pass serves from it. They must agree
  // bitwise, and the entity rankings must match the cache-free Model().
  const auto reference = Model()->BulkLookup(queries, 5, /*parallel=*/false);
  const auto cold = cached->BulkLookup(queries, 5, /*parallel=*/false);
  const auto warm = cached->BulkLookup(queries, 5, /*parallel=*/false);
  ASSERT_EQ(cold.size(), reference.size());
  ASSERT_EQ(warm.size(), cold.size());
  for (size_t i = 0; i < cold.size(); ++i) {
    ASSERT_EQ(cold[i].size(), reference[i].size());
    ASSERT_EQ(warm[i].size(), cold[i].size());
    for (size_t j = 0; j < cold[i].size(); ++j) {
      EXPECT_EQ(cold[i][j].entity, reference[i][j].entity);
      EXPECT_EQ(warm[i][j].entity, cold[i][j].entity);
      EXPECT_EQ(warm[i][j].dist, cold[i][j].dist);
    }
  }
  const EncoderCacheStats stats = cached->encode_cache()->Stats();
  // Pass 2 (and any duplicate labels in pass 1) must hit.
  EXPECT_GE(stats.hits, queries.size());
  EXPECT_GT(stats.misses, 0u);
  std::remove(path.c_str());
}

TEST_F(EmbLookupE2ETest, EmbedIsUnitNorm) {
  const auto v = Model()->Embed("whatever string");
  float sq = 0;
  for (float x : v) sq += x * x;
  EXPECT_NEAR(sq, 1.0f, 1e-3f);
}

}  // namespace
}  // namespace emblookup::core
