#include <algorithm>
#include <atomic>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "ann/flat_index.h"
#include "ann/hnsw_index.h"
#include "ann/kmeans.h"
#include "ann/lsh_index.h"
#include "ann/pca.h"
#include "ann/pq.h"
#include "ann/pq_index.h"
#include "ann/sq8_index.h"
#include "common/rng.h"
#include "common/thread_pool.h"

namespace emblookup::ann {
namespace {

/// Well-separated Gaussian blobs for clustering/recall tests.
std::vector<float> MakeBlobs(int64_t n, int64_t dim, int64_t num_blobs,
                             Rng* rng, std::vector<int64_t>* labels) {
  std::vector<float> centers(num_blobs * dim);
  for (auto& c : centers) c = rng->UniformFloat(-10.0f, 10.0f);
  std::vector<float> data(n * dim);
  for (int64_t i = 0; i < n; ++i) {
    const int64_t blob = static_cast<int64_t>(rng->Uniform(num_blobs));
    if (labels != nullptr) labels->push_back(blob);
    for (int64_t d = 0; d < dim; ++d) {
      data[i * dim + d] = centers[blob * dim + d] +
                          static_cast<float>(rng->Normal()) * 0.3f;
    }
  }
  return data;
}

// --- KMeans ------------------------------------------------------------------

TEST(KMeansTest, RecoversSeparatedClusters) {
  Rng rng(1);
  std::vector<int64_t> labels;
  const auto data = MakeBlobs(300, 4, 3, &rng, &labels);
  KMeansResult km = KMeans(data.data(), 300, 4, 3, 30, &rng);
  EXPECT_EQ(km.k, 3);
  // Points in the same blob should share a nearest centroid.
  for (int64_t i = 1; i < 300; ++i) {
    if (labels[i] == labels[0]) {
      EXPECT_EQ(NearestCentroid(km, data.data() + i * 4),
                NearestCentroid(km, data.data()));
    }
  }
}

TEST(KMeansTest, InertiaDecreasesWithMoreClusters) {
  Rng rng(2);
  const auto data = MakeBlobs(400, 6, 8, &rng, nullptr);
  Rng r1(3), r2(3);
  const double inertia2 = KMeans(data.data(), 400, 6, 2, 25, &r1).inertia;
  const double inertia16 = KMeans(data.data(), 400, 6, 16, 25, &r2).inertia;
  EXPECT_LT(inertia16, inertia2);
}

TEST(KMeansTest, FewerPointsThanCentroids) {
  Rng rng(4);
  std::vector<float> data = {0, 0, 1, 1, 2, 2};
  KMeansResult km = KMeans(data.data(), 3, 2, 8, 10, &rng);
  EXPECT_EQ(km.k, 8);
  EXPECT_EQ(static_cast<int64_t>(km.centroids.size()), 8 * 2);
}

// --- FlatIndex ---------------------------------------------------------------

TEST(FlatIndexTest, ExactAgainstBruteForce) {
  Rng rng(5);
  const int64_t n = 500, dim = 16;
  std::vector<float> data(n * dim);
  for (auto& v : data) v = rng.UniformFloat(-1, 1);
  FlatIndex index(dim);
  index.Add(data.data(), n);

  std::vector<float> query(dim);
  for (auto& v : query) v = rng.UniformFloat(-1, 1);
  const auto got = index.Search(query.data(), 10);
  ASSERT_EQ(got.size(), 10u);

  // Brute force reference.
  std::vector<std::pair<float, int64_t>> ref;
  for (int64_t i = 0; i < n; ++i) {
    float d = 0;
    for (int64_t j = 0; j < dim; ++j) {
      const float diff = query[j] - data[i * dim + j];
      d += diff * diff;
    }
    ref.emplace_back(d, i);
  }
  std::sort(ref.begin(), ref.end());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].id, ref[i].second);
    EXPECT_NEAR(got[i].dist, ref[i].first, 1e-4f);
  }
}

TEST(FlatIndexTest, ResultsSortedAscending) {
  Rng rng(6);
  FlatIndex index(8);
  std::vector<float> data(100 * 8);
  for (auto& v : data) v = rng.UniformFloat(-1, 1);
  index.Add(data.data(), 100);
  const auto got = index.Search(data.data(), 20);
  for (size_t i = 1; i < got.size(); ++i) {
    EXPECT_LE(got[i - 1].dist, got[i].dist);
  }
  EXPECT_EQ(got[0].id, 0);  // Query equals vector 0.
}

TEST(FlatIndexTest, KClampedToSize) {
  FlatIndex index(2);
  std::vector<float> v = {1, 2, 3, 4};
  index.Add(v.data(), 2);
  EXPECT_EQ(index.Search(v.data(), 100).size(), 2u);
}

TEST(FlatIndexTest, BatchMatchesSingleWithAndWithoutPool) {
  Rng rng(7);
  FlatIndex index(4);
  std::vector<float> data(50 * 4);
  for (auto& v : data) v = rng.UniformFloat(-1, 1);
  index.Add(data.data(), 50);
  ThreadPool pool(3);
  const auto seq = index.BatchSearch(data.data(), 10, 5, nullptr);
  const auto par = index.BatchSearch(data.data(), 10, 5, &pool);
  ASSERT_EQ(seq.size(), par.size());
  for (size_t i = 0; i < seq.size(); ++i) {
    ASSERT_EQ(seq[i].size(), par[i].size());
    for (size_t j = 0; j < seq[i].size(); ++j) {
      EXPECT_EQ(seq[i][j].id, par[i][j].id);
    }
  }
}

TEST(FlatIndexTest, StorageBytes) {
  FlatIndex index(64);
  std::vector<float> v(64, 0.0f);
  index.Add(v.data(), 1);
  EXPECT_EQ(index.StorageBytes(), 64 * 4);
}

// --- ProductQuantizer ---------------------------------------------------------

TEST(PqTest, RoundTripErrorSmallOnClusteredData) {
  Rng rng(8);
  const int64_t n = 600, dim = 16;
  const auto data = MakeBlobs(n, dim, 5, &rng, nullptr);
  ProductQuantizer pq(dim, 4);
  ASSERT_TRUE(pq.Train(data.data(), n, &rng).ok());
  std::vector<uint8_t> codes(n * 4);
  pq.Encode(data.data(), n, codes.data());
  std::vector<float> decoded(dim);
  double err = 0.0, norm = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    pq.Decode(codes.data() + i * 4, decoded.data());
    for (int64_t d = 0; d < dim; ++d) {
      const float diff = decoded[d] - data[i * dim + d];
      err += diff * diff;
      norm += data[i * dim + d] * data[i * dim + d];
    }
  }
  EXPECT_LT(err / norm, 0.05);  // < 5% relative reconstruction error.
}

TEST(PqTest, MoreSubquantizersReduceError) {
  Rng rng(9);
  const int64_t n = 500, dim = 16;
  std::vector<float> data(n * dim);
  for (auto& v : data) v = rng.UniformFloat(-1, 1);
  auto recon_error = [&](int64_t m) {
    Rng local(10);
    ProductQuantizer pq(dim, m);
    EXPECT_TRUE(pq.Train(data.data(), n, &local).ok());
    std::vector<uint8_t> codes(n * m);
    pq.Encode(data.data(), n, codes.data());
    std::vector<float> decoded(dim);
    double err = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      pq.Decode(codes.data() + i * m, decoded.data());
      for (int64_t d = 0; d < dim; ++d) {
        const float diff = decoded[d] - data[i * dim + d];
        err += diff * diff;
      }
    }
    return err;
  };
  EXPECT_LT(recon_error(8), recon_error(2));
}

TEST(PqTest, AdcMatchesDecodedDistance) {
  Rng rng(11);
  const int64_t n = 300, dim = 8;
  std::vector<float> data(n * dim);
  for (auto& v : data) v = rng.UniformFloat(-1, 1);
  ProductQuantizer pq(dim, 2);
  ASSERT_TRUE(pq.Train(data.data(), n, &rng).ok());
  std::vector<uint8_t> codes(n * 2);
  pq.Encode(data.data(), n, codes.data());
  std::vector<float> table(pq.m() * pq.ksub());
  std::vector<float> query(dim);
  for (auto& v : query) v = rng.UniformFloat(-1, 1);
  pq.ComputeAdcTable(query.data(), table.data());
  std::vector<float> decoded(dim);
  for (int64_t i = 0; i < 20; ++i) {
    pq.Decode(codes.data() + i * 2, decoded.data());
    float exact = 0;
    for (int64_t d = 0; d < dim; ++d) {
      const float diff = query[d] - decoded[d];
      exact += diff * diff;
    }
    EXPECT_NEAR(pq.AdcDistance(table.data(), codes.data() + i * 2), exact,
                1e-3f);
  }
}

TEST(PqTest, RejectsIndivisibleDim) {
  EXPECT_DEATH(ProductQuantizer(10, 3), "divisible");
}

// --- PqIndex -------------------------------------------------------------------

TEST(PqIndexTest, HighRecallOnClusteredData) {
  Rng rng(12);
  const int64_t n = 800, dim = 32;
  const auto data = MakeBlobs(n, dim, 10, &rng, nullptr);
  PqIndex pq(dim, 8);
  ASSERT_TRUE(pq.Train(data.data(), n, &rng).ok());
  ASSERT_TRUE(pq.Add(data.data(), n).ok());
  FlatIndex flat(dim);
  flat.Add(data.data(), n);

  double recall = 0;
  const int64_t queries = 50, k = 10;
  for (int64_t q = 0; q < queries; ++q) {
    const float* qv = data.data() + q * dim;
    const auto truth = flat.Search(qv, k);
    const auto approx = pq.Search(qv, k);
    int64_t inter = 0;
    for (const auto& t : truth) {
      for (const auto& a : approx) {
        if (a.id == t.id) {
          ++inter;
          break;
        }
      }
    }
    recall += static_cast<double>(inter) / k;
  }
  EXPECT_GT(recall / queries, 0.7);
}

TEST(PqIndexTest, AddBeforeTrainFails) {
  PqIndex pq(8, 2);
  std::vector<float> v(8, 0.0f);
  EXPECT_FALSE(pq.Add(v.data(), 1).ok());
}

TEST(PqIndexTest, StorageIsMBytesPerVector) {
  Rng rng(13);
  PqIndex pq(16, 4);
  std::vector<float> data(100 * 16);
  for (auto& v : data) v = rng.UniformFloat(-1, 1);
  ASSERT_TRUE(pq.Train(data.data(), 100, &rng).ok());
  ASSERT_TRUE(pq.Add(data.data(), 100).ok());
  EXPECT_EQ(pq.StorageBytes(), 400);
}

// --- Sq8Index ----------------------------------------------------------------

TEST(Sq8IndexTest, NearExactAgainstBruteForce) {
  Rng rng(40);
  const int64_t n = 500, dim = 16;
  std::vector<float> data(n * dim);
  for (auto& v : data) v = rng.UniformFloat(-1, 1);
  Sq8Index index(dim);
  ASSERT_TRUE(index.Train(data.data(), n).ok());
  ASSERT_TRUE(index.Add(data.data(), n).ok());

  std::vector<float> query(dim);
  for (auto& v : query) v = rng.UniformFloat(-1, 1);
  const auto got = index.Search(query.data(), 10);
  ASSERT_EQ(got.size(), 10u);

  // Brute force over the *dequantized* vectors: the asymmetric
  // decomposition must reproduce these distances exactly (up to float
  // accumulation order), so ranks match and distances are tight.
  std::vector<float> row(dim);
  std::vector<std::pair<float, int64_t>> ref;
  for (int64_t i = 0; i < n; ++i) {
    index.Reconstruct(i, row.data());
    float d = 0;
    for (int64_t j = 0; j < dim; ++j) {
      const float diff = query[j] - row[j];
      d += diff * diff;
    }
    ref.emplace_back(d, i);
  }
  std::sort(ref.begin(), ref.end());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].id, ref[i].second);
    EXPECT_NEAR(got[i].dist, ref[i].first, 1e-2f);
  }
}

TEST(Sq8IndexTest, ReconstructionErrorBoundedByHalfStep) {
  Rng rng(41);
  const int64_t n = 300, dim = 8;
  std::vector<float> data(n * dim);
  for (auto& v : data) v = rng.UniformFloat(-3, 5);
  Sq8Index index(dim);
  ASSERT_TRUE(index.Train(data.data(), n).ok());
  ASSERT_TRUE(index.Add(data.data(), n).ok());
  // Per-dim quantization step = range/255; round-to-nearest error <= step/2.
  const float step = (5.0f - (-3.0f)) / 255.0f;
  std::vector<float> row(dim);
  for (int64_t i = 0; i < n; ++i) {
    index.Reconstruct(i, row.data());
    for (int64_t d = 0; d < dim; ++d) {
      EXPECT_LE(std::fabs(row[d] - data[i * dim + d]), 0.5f * step + 1e-5f);
    }
  }
}

TEST(Sq8IndexTest, ConstantDimensionIsLossless) {
  const int64_t n = 4, dim = 2;
  // Dimension 1 is constant: scale 0, encodes to 0, decodes to the offset.
  std::vector<float> data = {0.0f, 7.5f, 1.0f, 7.5f, 2.0f, 7.5f, 3.0f, 7.5f};
  Sq8Index index(dim);
  ASSERT_TRUE(index.Train(data.data(), n).ok());
  ASSERT_TRUE(index.Add(data.data(), n).ok());
  std::vector<float> row(dim);
  for (int64_t i = 0; i < n; ++i) {
    index.Reconstruct(i, row.data());
    EXPECT_EQ(row[1], 7.5f);
  }
}

TEST(Sq8IndexTest, AddBeforeTrainFails) {
  Sq8Index index(8);
  std::vector<float> v(8, 0.0f);
  EXPECT_FALSE(index.Add(v.data(), 1).ok());
}

TEST(Sq8IndexTest, BatchMatchesSingleWithAndWithoutPool) {
  Rng rng(42);
  const int64_t n = 60, dim = 4;
  std::vector<float> data(n * dim);
  for (auto& v : data) v = rng.UniformFloat(-1, 1);
  Sq8Index index(dim);
  ASSERT_TRUE(index.Train(data.data(), n).ok());
  ASSERT_TRUE(index.Add(data.data(), n).ok());
  ThreadPool pool(3);
  const auto seq = index.BatchSearch(data.data(), 10, 5, nullptr);
  const auto par = index.BatchSearch(data.data(), 10, 5, &pool);
  ASSERT_EQ(seq.size(), par.size());
  for (size_t i = 0; i < seq.size(); ++i) {
    ASSERT_EQ(seq[i].size(), par[i].size());
    for (size_t j = 0; j < seq[i].size(); ++j) {
      EXPECT_EQ(seq[i][j].id, par[i][j].id);
    }
  }
}

TEST(Sq8IndexTest, StorageIsOneBytePerDimPlusNormsAndParams) {
  Rng rng(43);
  const int64_t n = 100, dim = 64;
  std::vector<float> data(n * dim);
  for (auto& v : data) v = rng.UniformFloat(-1, 1);
  Sq8Index index(dim);
  ASSERT_TRUE(index.Train(data.data(), n).ok());
  ASSERT_TRUE(index.Add(data.data(), n).ok());
  EXPECT_EQ(index.StorageBytes(), n * dim + n * 4 + 2 * dim * 4);
  // vs flat (n * dim * 4): ~3.76x smaller at dim 64.
  EXPECT_LT(index.StorageBytes() * 3, n * dim * 4);
}

// --- PCA ------------------------------------------------------------------------

TEST(PcaTest, FullDimIsLosslessRotation) {
  Rng rng(14);
  const int64_t n = 200, dim = 6;
  std::vector<float> data(n * dim);
  for (auto& v : data) v = rng.UniformFloat(-1, 1);
  Pca pca;
  ASSERT_TRUE(pca.Fit(data.data(), n, dim, dim).ok());
  EXPECT_NEAR(pca.ExplainedVariance(), 1.0, 1e-6);
  // Pairwise distances preserved by a full-rank orthogonal projection.
  std::vector<float> proj(n * dim);
  pca.Transform(data.data(), n, proj.data());
  auto dist = [&](const float* base, int64_t i, int64_t j) {
    float d = 0;
    for (int64_t k = 0; k < dim; ++k) {
      const float diff = base[i * dim + k] - base[j * dim + k];
      d += diff * diff;
    }
    return d;
  };
  for (int64_t i = 0; i < 10; ++i) {
    EXPECT_NEAR(dist(data.data(), i, i + 1), dist(proj.data(), i, i + 1),
                1e-2f);
  }
}

TEST(PcaTest, FindsDominantDirection) {
  Rng rng(15);
  const int64_t n = 500;
  // Data varies mostly along (1,1)/sqrt(2) in 2-D.
  std::vector<float> data(n * 2);
  for (int64_t i = 0; i < n; ++i) {
    const float t = rng.UniformFloat(-5, 5);
    const float noise = rng.UniformFloat(-0.1f, 0.1f);
    data[i * 2] = t + noise;
    data[i * 2 + 1] = t - noise;
  }
  Pca pca;
  ASSERT_TRUE(pca.Fit(data.data(), n, 2, 1).ok());
  EXPECT_GT(pca.ExplainedVariance(), 0.99);
}

TEST(PcaTest, RejectsBadArgs) {
  std::vector<float> data = {1, 2};
  Pca pca;
  EXPECT_FALSE(pca.Fit(data.data(), 1, 2, 1).ok());
  EXPECT_FALSE(pca.Fit(data.data(), 2, 1, 2).ok());
}

// --- HNSW --------------------------------------------------------------------

TEST(HnswIndexTest, HighRecallAgainstFlatGroundTruth) {
  // Queries come from the same blob distribution as the catalog (one
  // MakeBlobs draw, then split) — the KG lookup setting, where a query
  // embedding lands near some indexed entity.
  Rng rng(41);
  const int64_t n = 4000, dim = 32, queries = 300;
  const auto all = MakeBlobs(n + queries, dim, 25, &rng, nullptr);
  FlatIndex flat(dim);
  flat.Add(all.data(), n);
  HnswIndex hnsw(dim, {});
  ASSERT_TRUE(hnsw.Add(all.data(), n).ok());
  EXPECT_EQ(hnsw.size(), n);

  const float* probes = all.data() + n * dim;
  int hits = 0;
  for (int64_t i = 0; i < queries; ++i) {
    const auto truth = flat.Search(probes + i * dim, 1);
    const auto got = hnsw.Search(probes + i * dim, 1);
    ASSERT_EQ(got.size(), 1u);
    if (got[0].id == truth[0].id) ++hits;
  }
  EXPECT_GE(static_cast<double>(hits) / queries, 0.95);
}

TEST(HnswIndexTest, DeterministicBuildWithFixedSeed) {
  Rng rng(42);
  const int64_t n = 1200, dim = 16;
  const auto data = MakeBlobs(n, dim, 10, &rng, nullptr);
  HnswIndex::Options options;
  options.seed = 77;
  HnswIndex a(dim, options), b(dim, options);
  ASSERT_TRUE(a.Add(data.data(), n).ok());
  ASSERT_TRUE(b.Add(data.data(), n).ok());

  // Identical graphs: same entry point, levels, and adjacency bytes.
  EXPECT_EQ(a.entry_point(), b.entry_point());
  EXPECT_EQ(a.max_level(), b.max_level());
  std::vector<uint64_t> offsets_a, offsets_b;
  std::vector<int32_t> links_a, links_b;
  a.ExportCsr(&offsets_a, &links_a);
  b.ExportCsr(&offsets_b, &links_b);
  EXPECT_EQ(offsets_a, offsets_b);
  EXPECT_EQ(links_a, links_b);

  // And identical search behavior.
  std::vector<float> query(dim);
  for (auto& v : query) v = rng.UniformFloat(-10, 10);
  const auto ra = a.Search(query.data(), 10);
  const auto rb = b.Search(query.data(), 10);
  ASSERT_EQ(ra.size(), rb.size());
  for (size_t i = 0; i < ra.size(); ++i) EXPECT_EQ(ra[i].id, rb[i].id);
}

TEST(HnswIndexTest, EmptyIndexReturnsNothing) {
  HnswIndex index(8, {});
  std::vector<float> query(8, 0.0f);
  EXPECT_TRUE(index.Search(query.data(), 5).empty());
  EXPECT_EQ(index.size(), 0);
  const auto lists = index.BatchSearch(query.data(), 1, 5);
  ASSERT_EQ(lists.size(), 1u);
  EXPECT_TRUE(lists[0].empty());
}

TEST(HnswIndexTest, SingleElement) {
  std::vector<float> v = {1.0f, 2.0f, 3.0f, 4.0f};
  HnswIndex index(4, {});
  ASSERT_TRUE(index.Add(v.data(), 1).ok());
  const auto got = index.Search(v.data(), 5);  // k clamps to size.
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].id, 0);
  EXPECT_FLOAT_EQ(got[0].dist, 0.0f);
}

TEST(HnswIndexTest, DuplicateVectorsAllReachable) {
  // 50 copies of one point + distinct others: the diversity heuristic must
  // not disconnect the duplicates, and ranks stay (dist, id)-ordered.
  const int64_t dim = 8, dups = 50, n = 100;
  std::vector<float> data(n * dim, 0.0f);
  Rng rng(43);
  for (int64_t i = dups; i < n; ++i) {
    for (int64_t d = 0; d < dim; ++d) {
      data[i * dim + d] = rng.UniformFloat(1.0f, 5.0f);
    }
  }
  HnswIndex index(dim, {});
  ASSERT_TRUE(index.Add(data.data(), n).ok());
  std::vector<float> query(dim, 0.0f);
  const auto got = index.SearchEf(query.data(), 10, 128);
  ASSERT_EQ(got.size(), 10u);
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_FLOAT_EQ(got[i].dist, 0.0f);
    EXPECT_EQ(got[i].id, static_cast<int64_t>(i));  // Tie-break by id.
  }
}

TEST(HnswIndexTest, BatchMatchesSingleWithAndWithoutPool) {
  Rng rng(44);
  const int64_t n = 800, dim = 12, num_queries = 24;
  const auto data = MakeBlobs(n, dim, 6, &rng, nullptr);
  HnswIndex index(dim, {});
  ASSERT_TRUE(index.Add(data.data(), n).ok());
  const auto queries = MakeBlobs(num_queries, dim, 6, &rng, nullptr);

  ThreadPool pool(4);
  const auto serial = index.BatchSearch(queries.data(), num_queries, 5);
  const auto parallel =
      index.BatchSearch(queries.data(), num_queries, 5, &pool);
  ASSERT_EQ(serial.size(), parallel.size());
  for (int64_t i = 0; i < num_queries; ++i) {
    const auto single = index.Search(queries.data() + i * dim, 5);
    ASSERT_EQ(serial[i].size(), single.size());
    for (size_t j = 0; j < single.size(); ++j) {
      EXPECT_EQ(serial[i][j].id, single[j].id);
      EXPECT_EQ(parallel[i][j].id, single[j].id);
    }
  }
}

TEST(HnswIndexTest, BorrowedMatchesOwnedAndRejectsAdd) {
  Rng rng(45);
  const int64_t n = 600, dim = 16;
  const auto data = MakeBlobs(n, dim, 8, &rng, nullptr);
  HnswIndex owned(dim, {});
  ASSERT_TRUE(owned.Add(data.data(), n).ok());

  std::vector<uint64_t> offsets;
  std::vector<int32_t> links;
  owned.ExportCsr(&offsets, &links);
  auto borrowed = HnswIndex::FromBorrowed(
      dim, owned.options(), owned.vectors_data(), owned.levels_data(),
      owned.list_starts_data(), offsets.data(), links.data(), n,
      owned.entry_point(), owned.max_level(), owned.num_lists(),
      owned.total_links());
  ASSERT_TRUE(borrowed.ok()) << borrowed.status().ToString();
  EXPECT_TRUE(borrowed.value().borrowed());

  const auto queries = MakeBlobs(20, dim, 8, &rng, nullptr);
  for (int64_t i = 0; i < 20; ++i) {
    const auto a = owned.Search(queries.data() + i * dim, 7);
    const auto b = borrowed.value().Search(queries.data() + i * dim, 7);
    ASSERT_EQ(a.size(), b.size());
    for (size_t j = 0; j < a.size(); ++j) EXPECT_EQ(a[j].id, b[j].id);
  }

  const Status add = borrowed.value().Add(data.data(), 1);
  EXPECT_EQ(add.code(), StatusCode::kFailedPrecondition);
}

TEST(HnswIndexTest, ConcurrentSearchIsSafe) {
  // Read-only searches from many threads share the visited-list pool; run
  // under TSan in CI (concurrency stage) to pin data-race freedom.
  Rng rng(46);
  const int64_t n = 1000, dim = 16;
  const auto data = MakeBlobs(n, dim, 8, &rng, nullptr);
  HnswIndex index(dim, {});
  ASSERT_TRUE(index.Add(data.data(), n).ok());
  const auto queries = MakeBlobs(64, dim, 8, &rng, nullptr);

  ThreadPool pool(8);
  std::atomic<int> bad{0};
  pool.ParallelFor(256, [&](size_t i) {
    const auto got = index.Search(queries.data() + (i % 64) * dim, 5);
    if (got.size() != 5u) bad.fetch_add(1);
  });
  EXPECT_EQ(bad.load(), 0);
}

// --- LSH -----------------------------------------------------------------------

TEST(LshTest, FindsNearDuplicates) {
  StringLshIndex index;
  index.Add(1, "international business machines");
  index.Add(2, "quantum flux capacitor");
  index.Add(3, "apple computer incorporated");
  auto top = index.TopK("international busines machines", 2);
  ASSERT_FALSE(top.empty());
  EXPECT_EQ(top[0].first, 1);
  EXPECT_GT(top[0].second, 90.0);
}

TEST(LshTest, UnrelatedQueryFindsLittle) {
  StringLshIndex index;
  index.Add(1, "alpha beta gamma");
  auto top = index.TopK("zzzzqqqq wwww", 5);
  // Either empty or a low-similarity candidate.
  if (!top.empty()) EXPECT_LT(top[0].second, 50.0);
}

}  // namespace
}  // namespace emblookup::ann
