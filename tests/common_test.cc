#include <atomic>
#include <chrono>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "common/timing.h"

namespace emblookup {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("k must be > 0");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "InvalidArgument: k must be > 0");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  std::set<StatusCode> codes = {
      Status::InvalidArgument("").code(), Status::NotFound("").code(),
      Status::AlreadyExists("").code(),   Status::OutOfRange("").code(),
      Status::FailedPrecondition("").code(), Status::IoError("").code(),
      Status::Internal("").code(),        Status::Unimplemented("").code()};
  EXPECT_EQ(codes.size(), 8u);
}

TEST(ResultTest, ValueAndStatusPaths) {
  Result<int> ok(42);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);
  Result<int> err(Status::NotFound("missing"));
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::vector<int>> r(std::vector<int>{1, 2, 3});
  std::vector<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(v.size(), 3u);
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  bool differ = false;
  for (int i = 0; i < 10; ++i) differ |= (a.NextU64() != b.NextU64());
  EXPECT_TRUE(differ);
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(8);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, NormalHasRoughlyZeroMeanUnitVar) {
  Rng rng(10);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.1);
}

TEST(RngTest, ZipfIsSkewedTowardSmallRanks) {
  Rng rng(11);
  int64_t low = 0, high = 0;
  for (int i = 0; i < 5000; ++i) {
    uint64_t v = rng.Zipf(1000, 1.2);
    EXPECT_LT(v, 1000u);
    if (v < 10) ++low;
    if (v >= 500) ++high;
  }
  EXPECT_GT(low, high);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(12);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.ParallelFor(100, [&](size_t i) { hits[i]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, WaitBlocksUntilDone) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&] { counter++; });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, ZeroRequestsHardwareThreads) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1u);
}

TEST(ThreadPoolTest, ParallelForEmptyIsNoop) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](size_t) { FAIL(); });
}

TEST(ThreadPoolTest, ConcurrentSubmittersAllExecute) {
  // The serving dispatcher and index-swap builder submit concurrently;
  // every task from every producer thread must run exactly once.
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  constexpr int kProducers = 8;
  constexpr int kTasksPerProducer = 250;
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&] {
      for (int i = 0; i < kTasksPerProducer; ++i) {
        pool.Submit([&] { counter.fetch_add(1); });
      }
    });
  }
  for (auto& t : producers) t.join();
  pool.Wait();
  EXPECT_EQ(counter.load(), kProducers * kTasksPerProducer);
}

TEST(ThreadPoolTest, ConcurrentParallelForsCoverBothRanges) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> a(64), b(64);
  std::thread other([&] {
    pool.ParallelFor(a.size(), [&](size_t i) { a[i]++; });
  });
  pool.ParallelFor(b.size(), [&](size_t i) { b[i]++; });
  other.join();
  for (auto& h : a) EXPECT_EQ(h.load(), 1);
  for (auto& h : b) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&] {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
        counter.fetch_add(1);
      });
    }
    // No Wait(): destruction races the queue; every task must still run.
  }
  EXPECT_EQ(counter.load(), 100);
}

TEST(StringUtilTest, ToLowerUpper) {
  EXPECT_EQ(ToLower("BeRLin 42!"), "berlin 42!");
  EXPECT_EQ(ToUpper("beRlin"), "BERLIN");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  x y  "), "x y");
  EXPECT_EQ(Trim("\t\n"), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(StringUtilTest, SplitKeepsEmptyPieces) {
  auto parts = Split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "");
}

TEST(StringUtilTest, SplitWhitespaceDropsEmpty) {
  auto parts = SplitWhitespace("  a \t b\nc ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[2], "c");
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("hello", "he"));
  EXPECT_FALSE(StartsWith("he", "hello"));
}

TEST(StringUtilTest, NormalizeWhitespace) {
  EXPECT_EQ(NormalizeWhitespace("  East   Berlin  "), "East Berlin");
  EXPECT_EQ(NormalizeWhitespace(""), "");
}

TEST(TimingTest, StopwatchAdvances) {
  Stopwatch sw;
  volatile double x = 0;
  for (int i = 0; i < 100000; ++i) x += i;
  EXPECT_GT(sw.ElapsedSeconds(), 0.0);
}

TEST(TimingTest, VirtualClockAccumulates) {
  VirtualClock clock;
  EXPECT_EQ(clock.NowSeconds(), 0.0);
  clock.Advance(1.5);
  clock.Advance(0.5);
  EXPECT_DOUBLE_EQ(clock.NowSeconds(), 2.0);
}

}  // namespace
}  // namespace emblookup
