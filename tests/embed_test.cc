#include <cmath>
#include <sstream>

#include <gtest/gtest.h>

#include "embed/corpus.h"
#include "embed/fasttext.h"
#include "embed/lstm_encoder.h"
#include "embed/minibert.h"
#include "embed/word2vec.h"
#include "kg/synthetic_kg.h"

namespace emblookup::embed {
namespace {

float Cosine(const std::vector<float>& a, const std::vector<float>& b) {
  float dot = 0, na = 0, nb = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  return dot / (std::sqrt(na) * std::sqrt(nb) + 1e-9f);
}

/// Tiny corpus with an unambiguous synonym pair: "alpha" and "omega" always
/// co-occur; "zebra" never meets them.
Corpus SynonymCorpus() {
  Corpus corpus;
  auto add = [&corpus](std::vector<std::string> tokens) {
    for (const auto& t : tokens) ++corpus.token_counts[t];
    corpus.sentences.push_back(std::move(tokens));
  };
  for (int i = 0; i < 200; ++i) {
    add({"alpha", "aka", "omega"});
    add({"omega", "aka", "alpha"});
    add({"zebra", "eats", "grass"});
    add({"grass", "feeds", "zebra"});
  }
  return corpus;
}

TEST(CorpusTest, TokenizeMentionLowercasesAndStrips) {
  const auto tokens = TokenizeMention("Gates, William H.");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0], "gates");
  EXPECT_EQ(tokens[1], "william");
  EXPECT_EQ(tokens[2], "h");
}

TEST(CorpusTest, TokenizeSplitsOnHyphenSlash) {
  const auto tokens = TokenizeMention("Baden-Württemberg/Bayern");
  EXPECT_GE(tokens.size(), 2u);
}

TEST(CorpusTest, BuildFromKgCoversAliases) {
  kg::SyntheticKgOptions options;
  options.num_entities = 100;
  options.seed = 4;
  const kg::KnowledgeGraph graph = kg::GenerateSyntheticKg(options);
  const Corpus corpus = BuildCorpus(graph, {});
  EXPECT_GT(corpus.sentences.size(), 200u);
  EXPECT_GT(corpus.TotalTokens(), 1000);
  // "aka" and "isa" connectives exist.
  EXPECT_GT(corpus.token_counts.at("aka"), 0);
  EXPECT_GT(corpus.token_counts.at("isa"), 0);
}

TEST(Word2VecTest, LearnsDirectCooccurrence) {
  Word2Vec::Options options;
  options.epochs = 10;
  options.dim = 16;
  Word2Vec model(options);
  model.Train(SynonymCorpus());
  const float syn = Cosine(model.EncodeMention("alpha"),
                           model.EncodeMention("omega"));
  const float unrel = Cosine(model.EncodeMention("alpha"),
                             model.EncodeMention("zebra"));
  EXPECT_GT(syn, unrel);
}

TEST(Word2VecTest, OovEncodesToZero) {
  Word2Vec model;
  model.Train(SynonymCorpus());
  const auto v = model.EncodeMention("qqqqq");
  for (float x : v) EXPECT_EQ(x, 0.0f);
}

TEST(Word2VecTest, ContainsAndVocab) {
  Word2Vec model;
  model.Train(SynonymCorpus());
  EXPECT_TRUE(model.Contains("alpha"));
  EXPECT_FALSE(model.Contains("nonexistent"));
  EXPECT_EQ(model.vocab_size(), 7);
}

TEST(Word2VecTest, SaveLoadRoundTrip) {
  Word2Vec::Options options;
  options.epochs = 3;
  Word2Vec model(options);
  model.Train(SynonymCorpus());
  std::stringstream buffer;
  ASSERT_TRUE(model.Save(&buffer).ok());
  Word2Vec restored(options);
  ASSERT_TRUE(restored.Load(&buffer).ok());
  EXPECT_EQ(restored.vocab_size(), model.vocab_size());
  const auto a = model.EncodeMention("alpha omega");
  const auto b = restored.EncodeMention("alpha omega");
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(Word2VecTest, LoadRejectsDimMismatch) {
  Word2Vec::Options options;
  options.epochs = 1;
  Word2Vec model(options);
  model.Train(SynonymCorpus());
  std::stringstream buffer;
  ASSERT_TRUE(model.Save(&buffer).ok());
  Word2Vec::Options other = options;
  other.dim = 32;
  Word2Vec restored(other);
  EXPECT_FALSE(restored.Load(&buffer).ok());
}

TEST(FastTextTest, OovStillEncodesViaSubwords) {
  FastTextModel model;
  model.Train(SynonymCorpus());
  const auto v = model.EncodeMention("alphq");  // Typo'd, OOV.
  float norm = 0;
  for (float x : v) norm += x * x;
  EXPECT_GT(norm, 0.0f);
}

TEST(FastTextTest, TypoCloserThanUnrelated) {
  FastTextModel model;
  model.Train(SynonymCorpus());
  const auto clean = model.EncodeMention("alpha");
  const float typo_sim = Cosine(clean, model.EncodeMention("alpht"));
  const float unrel_sim = Cosine(clean, model.EncodeMention("zzyyxx"));
  EXPECT_GT(typo_sim, unrel_sim);
}

TEST(FastTextTest, SplitPartsHaveExpectedZeroing) {
  FastTextModel model;
  model.Train(SynonymCorpus());
  std::vector<float> word(model.dim()), sub(model.dim());
  // In-vocab word: both parts nonzero.
  model.EncodeMentionSplit("alpha", word.data(), sub.data());
  float wn = 0, sn = 0;
  for (int64_t i = 0; i < model.dim(); ++i) {
    wn += word[i] * word[i];
    sn += sub[i] * sub[i];
  }
  EXPECT_GT(wn, 0.0f);
  EXPECT_GT(sn, 0.0f);
}

TEST(FastTextTest, SaveLoadRoundTrip) {
  FastTextModel model;
  model.Train(SynonymCorpus());
  std::stringstream buffer;
  ASSERT_TRUE(model.Save(&buffer).ok());
  FastTextModel restored;
  ASSERT_TRUE(restored.Load(&buffer).ok());
  const auto a = model.EncodeMention("alpha omega");
  const auto b = restored.EncodeMention("alpha omega");
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(LstmEncoderTest, OutputShapeAndDeterminism) {
  CharLstmEncoder::Options options;
  options.hidden = 16;
  options.out_dim = 8;
  CharLstmEncoder encoder(options);
  tensor::NoGradGuard guard;
  tensor::Tensor a = encoder.EncodeBatch({"berlin", "munich"});
  EXPECT_EQ(a.dim(0), 2);
  EXPECT_EQ(a.dim(1), 8);
  tensor::Tensor b = encoder.EncodeBatch({"berlin", "munich"});
  for (int64_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.data()[i], b.data()[i]);
  }
}

TEST(LstmEncoderTest, DifferentStringsDifferentEmbeddings) {
  CharLstmEncoder encoder;
  const auto a = encoder.Encode("berlin");
  const auto b = encoder.Encode("tokyo");
  bool differ = false;
  for (size_t i = 0; i < a.size(); ++i) differ |= (a[i] != b[i]);
  EXPECT_TRUE(differ);
}

TEST(LstmEncoderTest, ParametersExposeAllModules) {
  CharLstmEncoder encoder;
  // char embedding + 3 LSTM tensors + 2 linear tensors.
  EXPECT_EQ(encoder.Parameters().size(), 6u);
}

TEST(MiniBertTest, PretrainAndEncodeSmoke) {
  MiniBert::Options options;
  options.dim = 16;
  options.ffn_dim = 32;
  options.num_layers = 1;
  options.epochs = 1;
  options.max_sentences = 200;
  MiniBert bert(options);
  bert.Pretrain(SynonymCorpus());
  EXPECT_GT(bert.vocab_size(), 2);
  const auto v = bert.EncodeMention("alpha omega");
  EXPECT_EQ(v.size(), 16u);
  float norm = 0;
  for (float x : v) norm += x * x;
  EXPECT_GT(norm, 0.0f);
  for (float x : v) EXPECT_TRUE(std::isfinite(x));
}

TEST(MiniBertTest, EncodeBeforePretrainIsZero) {
  MiniBert bert;
  const auto v = bert.EncodeMention("anything");
  for (float x : v) EXPECT_EQ(x, 0.0f);
}

}  // namespace
}  // namespace emblookup::embed
