// Cross-module integration tests: trained pipelines, alternative losses,
// alias-expanded end-to-end lookup, coherence overrides, and service
// parity properties that only show up when modules are composed.

#include <gtest/gtest.h>

#include "apps/lookup_services.h"
#include "apps/tasks.h"
#include "common/rng.h"
#include "core/emblookup.h"
#include "core/trainer.h"
#include "core/triplets.h"
#include "embed/transe.h"
#include "kg/noise.h"
#include "kg/synthetic_kg.h"
#include "kg/tabular.h"

namespace emblookup {
namespace {

const kg::KnowledgeGraph& Graph() {
  static const kg::KnowledgeGraph& graph = [] {
    kg::SyntheticKgOptions options;
    options.num_entities = 300;
    options.seed = 404;
    return *new kg::KnowledgeGraph(kg::GenerateSyntheticKg(options));
  }();
  return graph;
}

TEST(ContrastiveTrainingTest, LossDecreases) {
  core::EncoderConfig enc_config;
  enc_config.conv_channels = 4;
  enc_config.num_conv_layers = 2;
  enc_config.embedding_dim = 16;
  enc_config.fusion_hidden = 16;
  core::EmbLookupEncoder encoder(enc_config, nullptr);

  core::MinerConfig miner;
  miner.triplets_per_entity = 4;
  const auto triplets = core::MineTriplets(Graph(), miner);

  core::TrainerConfig config;
  config.epochs = 4;
  config.loss = core::LossKind::kContrastive;
  core::TripletTrainer trainer(config);
  auto stats = trainer.Train(&encoder, triplets);
  ASSERT_TRUE(stats.ok());
  // Contrastive loss on unit-norm embeddings starts near E[d_ap] ~ 2;
  // a few epochs should push it well below that.
  EXPECT_LT(stats.value().final_loss, 1.0);
}

TEST(AliasIndexEndToEndTest, AliasLookupWorksUntrainedViaIndexRows) {
  core::EmbLookupOptions options;
  options.miner.triplets_per_entity = 4;
  options.trainer.epochs = 2;
  options.fasttext.epochs = 2;
  options.index.index_aliases = true;
  options.index.compress = false;
  auto el = core::EmbLookup::TrainFromKg(Graph(), options);
  ASSERT_TRUE(el.ok());
  int hits = 0, total = 0;
  for (kg::EntityId e = 0; e < Graph().num_entities(); e += 10) {
    const auto& aliases = Graph().entity(e).aliases;
    if (aliases.empty()) continue;
    for (const auto& r : el.value()->Lookup(aliases[0], 10)) {
      if (r.entity == e) {
        ++hits;
        break;
      }
    }
    ++total;
  }
  ASSERT_GT(total, 0);
  EXPECT_GT(static_cast<double>(hits) / total, 0.85);
}

TEST(CoherenceOverrideTest, TransECoherencePluggable) {
  Rng rng(5);
  kg::DatasetProfile profile = kg::DatasetProfile::StWikidataLike(0.05);
  const kg::TabularDataset dataset =
      kg::GenerateDataset(Graph(), profile, &rng);
  apps::ElasticSearchService service(&Graph(), /*index_aliases=*/true);

  embed::TransE transe;
  transe.Train(Graph());
  apps::TaskOptions options;
  options.coherence = [&](kg::EntityId a, kg::EntityId b) {
    return std::max(0.0, transe.Similarity(a, b));
  };
  const auto result =
      apps::RunEntityDisambiguation(dataset, Graph(), &service, options);
  EXPECT_GT(result.metrics.F1(), 0.8);
}

TEST(EsHostedParityTest, BulkAndSingleReturnSameCandidates) {
  apps::LevenshteinService service(&Graph());
  std::vector<std::string> queries;
  Rng rng(6);
  for (kg::EntityId e = 0; e < 20; ++e) {
    queries.push_back(kg::RandomTypo(Graph().entity(e).label, &rng, 1));
  }
  const auto bulk = service.BulkLookup(queries, 5);
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(bulk[i], service.Lookup(queries[i], 5));
  }
}

TEST(IndexKindEndToEndTest, IvfPqSmallerThanIvfFlat) {
  core::EncoderConfig enc_config;
  core::EmbLookupEncoder encoder(enc_config, nullptr);
  core::IndexConfig flat_config;
  flat_config.kind = core::IndexKind::kIvfFlat;
  core::IndexConfig pq_config;
  pq_config.kind = core::IndexKind::kIvfPq;
  auto flat = core::EntityIndex::Build(Graph(), &encoder, flat_config);
  auto pq = core::EntityIndex::Build(Graph(), &encoder, pq_config);
  ASSERT_TRUE(flat.ok());
  ASSERT_TRUE(pq.ok());
  EXPECT_LT(pq.value().StorageBytes(), flat.value().StorageBytes());
}

TEST(RebuildIndexTest, SwitchesBetweenAllKinds) {
  core::EmbLookupOptions options;
  options.miner.triplets_per_entity = 4;
  options.trainer.epochs = 2;
  options.fasttext.epochs = 2;
  auto el = core::EmbLookup::TrainFromKg(Graph(), options);
  ASSERT_TRUE(el.ok());
  const std::string& label = Graph().entity(7).label;
  for (core::IndexKind kind :
       {core::IndexKind::kFlat, core::IndexKind::kIvfFlat,
        core::IndexKind::kIvfPq, core::IndexKind::kPq}) {
    core::IndexConfig config;
    config.kind = kind;
    config.ivf_nprobe = 16;
    ASSERT_TRUE(el.value()->RebuildIndex(config).ok());
    EXPECT_FALSE(el.value()->Lookup(label, 5).empty());
  }
}

TEST(NoiseRobustnessProperty, SingleTypoKeepsEmbeddingCloserThanRandom) {
  // Even an untrained encoder maps a 1-edit typo closer to the original
  // than to an unrelated string — the CNN-ED inductive bias of §III-B.
  core::EncoderConfig config;
  core::EmbLookupEncoder encoder(config, nullptr);
  tensor::NoGradGuard guard;
  Rng rng(8);
  int closer = 0, total = 0;
  for (kg::EntityId e = 0; e < Graph().num_entities(); e += 7) {
    const std::string& label = Graph().entity(e).label;
    if (label.size() < 6) continue;
    const std::string typo = kg::RandomTypo(label, &rng, 1);
    const std::string other =
        Graph().entity((e + 131) % Graph().num_entities()).label;
    tensor::Tensor batch = encoder.EncodeBatch({label, typo, other});
    auto dist = [&](int64_t i, int64_t j) {
      float acc = 0;
      const int64_t d = batch.dim(1);
      for (int64_t x = 0; x < d; ++x) {
        const float diff = batch.data()[i * d + x] - batch.data()[j * d + x];
        acc += diff * diff;
      }
      return acc;
    };
    if (dist(0, 1) < dist(0, 2)) ++closer;
    ++total;
  }
  EXPECT_GT(static_cast<double>(closer) / total, 0.8);
}

}  // namespace
}  // namespace emblookup
