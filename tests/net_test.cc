// Tests for the src/net subsystem: binary wire protocol round trips and
// malformed-input rejection (truncated frames, oversized declared
// lengths, CRC bit flips, fuzz sweeps — pinned under ASan), the HTTP
// fallback parser, and the epoll socket front end end to end: remote
// lookups bit-identical to in-process Submit, wire deadlines coming back
// as explicit DeadlineExceeded frames, per-connection overload shedding,
// slow-loris byte-at-a-time framing, drain-on-Stop, and stats counters.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "apps/lookup_service.h"
#include "common/rng.h"
#include "net/client.h"
#include "net/http_util.h"
#include "net/server.h"
#include "net/socket.h"
#include "net/wire.h"
#include "serve/lookup_server.h"

#if !defined(_WIN32)
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace emblookup::net {
namespace {

using std::chrono::microseconds;
using std::chrono::milliseconds;

// --- Wire protocol -----------------------------------------------------------

Result<Frame> DecodeWhole(const std::string& bytes) {
  Frame frame;
  EL_ASSIGN_OR_RETURN(
      const size_t consumed,
      DecodeFrame(reinterpret_cast<const uint8_t*>(bytes.data()),
                  bytes.size(), kDefaultMaxPayloadBytes, &frame));
  EXPECT_EQ(consumed, bytes.size());
  return frame;
}

TEST(WireTest, LookupRequestRoundTrips) {
  std::string bytes;
  AppendLookupRequest(&bytes, 42, "Germeny", 10, 1500);
  auto decoded = DecodeWhole(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  const Frame& frame = decoded.value();
  EXPECT_EQ(frame.type, FrameType::kLookupRequest);
  EXPECT_EQ(frame.request_id, 42u);
  EXPECT_EQ(frame.query, "Germeny");
  EXPECT_EQ(frame.k, 10);
  EXPECT_EQ(frame.deadline_us, 1500u);
}

TEST(WireTest, LookupResponseRoundTrips) {
  std::string bytes;
  AppendLookupResponse(&bytes, 7, /*from_cache=*/true, {5, -1, 99999999999});
  auto decoded = DecodeWhole(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().type, FrameType::kLookupResponse);
  EXPECT_EQ(decoded.value().request_id, 7u);
  EXPECT_TRUE(decoded.value().from_cache);
  EXPECT_EQ(decoded.value().ids, (std::vector<int64_t>{5, -1, 99999999999}));

  std::string empty;
  AppendLookupResponse(&empty, 8, false, {});
  auto decoded_empty = DecodeWhole(empty);
  ASSERT_TRUE(decoded_empty.ok());
  EXPECT_TRUE(decoded_empty.value().ids.empty());
  EXPECT_FALSE(decoded_empty.value().from_cache);
}

TEST(WireTest, ErrorAndPingPongRoundTrip) {
  std::string bytes;
  AppendError(&bytes, 3, Status::DeadlineExceeded("too slow"));
  auto decoded = DecodeWhole(bytes);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().type, FrameType::kError);
  EXPECT_EQ(decoded.value().error_code, StatusCode::kDeadlineExceeded);
  EXPECT_EQ(decoded.value().error_message, "too slow");

  std::string ping;
  AppendPing(&ping, 11);
  ASSERT_TRUE(DecodeWhole(ping).ok());
  EXPECT_EQ(DecodeWhole(ping).value().type, FrameType::kPing);
  std::string pong;
  AppendPong(&pong, 11);
  EXPECT_EQ(DecodeWhole(pong).value().type, FrameType::kPong);
}

TEST(WireTest, StatusCodeMappingIsFrozenOnTheWire) {
  const StatusCode codes[] = {
      StatusCode::kOk,           StatusCode::kInvalidArgument,
      StatusCode::kNotFound,     StatusCode::kAlreadyExists,
      StatusCode::kOutOfRange,   StatusCode::kFailedPrecondition,
      StatusCode::kIoError,      StatusCode::kInternal,
      StatusCode::kUnimplemented, StatusCode::kUnavailable,
      StatusCode::kDeadlineExceeded};
  for (StatusCode code : codes) {
    EXPECT_EQ(StatusCodeFromWire(WireErrorCode(code)), code);
    EXPECT_EQ(WireErrorCode(code), static_cast<uint8_t>(code));
  }
  // Unknown wire values decode to kInternal rather than failing.
  EXPECT_EQ(StatusCodeFromWire(200), StatusCode::kInternal);
}

TEST(WireTest, EveryPrefixOfAFrameNeedsMoreBytes) {
  std::string bytes;
  AppendLookupRequest(&bytes, 1, "prefix-query", 5, 0);
  for (size_t len = 0; len < bytes.size(); ++len) {
    Frame frame;
    auto consumed = DecodeFrame(reinterpret_cast<const uint8_t*>(bytes.data()),
                                len, kDefaultMaxPayloadBytes, &frame);
    ASSERT_TRUE(consumed.ok()) << "prefix len " << len;
    EXPECT_EQ(consumed.value(), 0u) << "prefix len " << len;
  }
}

TEST(WireTest, RejectsBadMagicVersionTypeAndReservedBits) {
  std::string good;
  AppendLookupRequest(&good, 1, "q", 3, 0);
  auto decode = [](std::string bytes) {
    Frame frame;
    return DecodeFrame(reinterpret_cast<const uint8_t*>(bytes.data()),
                       bytes.size(), kDefaultMaxPayloadBytes, &frame);
  };
  std::string bad_magic = good;
  bad_magic[0] ^= 0xff;
  EXPECT_FALSE(decode(bad_magic).ok());
  std::string bad_version = good;
  bad_version[4] = 99;
  EXPECT_FALSE(decode(bad_version).ok());
  std::string bad_type = good;
  bad_type[5] = 0x7f;
  EXPECT_FALSE(decode(bad_type).ok());
  std::string bad_reserved = good;
  bad_reserved[6] = 1;
  EXPECT_FALSE(decode(bad_reserved).ok());
}

TEST(WireTest, RejectsOversizedDeclaredPayload) {
  // A header whose declared payload exceeds the bound must error
  // immediately — not wait for 2 GB that will never arrive.
  std::string bytes;
  AppendLookupRequest(&bytes, 1, "q", 3, 0);
  const uint32_t huge = 1u << 30;
  std::memcpy(&bytes[16], &huge, sizeof(huge));
  Frame frame;
  auto consumed = DecodeFrame(reinterpret_cast<const uint8_t*>(bytes.data()),
                              bytes.size(), kDefaultMaxPayloadBytes, &frame);
  EXPECT_FALSE(consumed.ok());
}

TEST(WireTest, DetectsEveryPayloadBitFlip) {
  std::string bytes;
  AppendLookupRequest(&bytes, 77, "crc-protected-query", 10, 123456);
  for (size_t i = kFrameHeaderBytes; i < bytes.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string flipped = bytes;
      flipped[i] ^= static_cast<char>(1 << bit);
      Frame frame;
      auto consumed =
          DecodeFrame(reinterpret_cast<const uint8_t*>(flipped.data()),
                      flipped.size(), kDefaultMaxPayloadBytes, &frame);
      EXPECT_FALSE(consumed.ok() && consumed.value() > 0)
          << "undetected flip at byte " << i << " bit " << bit;
    }
  }
}

TEST(WireTest, FuzzSweepNeverReadsOutOfBounds) {
  // Random buffers and random mutations of valid frames must decode to
  // need-more/consumed/error without UB — this test exists to run under
  // the ASan stage of ci.sh.
  Rng rng(0xf022);
  for (int round = 0; round < 2000; ++round) {
    std::string bytes(rng.Uniform(200), '\0');
    for (char& c : bytes) c = static_cast<char>(rng.Uniform(256));
    Frame frame;
    auto consumed = DecodeFrame(reinterpret_cast<const uint8_t*>(bytes.data()),
                                bytes.size(), kDefaultMaxPayloadBytes, &frame);
    if (consumed.ok()) {
      EXPECT_LE(consumed.value(), bytes.size());
    }
  }
  std::string valid;
  AppendLookupRequest(&valid, 5, "fuzz-seed-query", 7, 42);
  for (int round = 0; round < 2000; ++round) {
    std::string mutated = valid;
    mutated[rng.Uniform(mutated.size())] ^= static_cast<char>(
        1 << rng.Uniform(8));
    Frame frame;
    auto consumed =
        DecodeFrame(reinterpret_cast<const uint8_t*>(mutated.data()),
                    mutated.size(), kDefaultMaxPayloadBytes, &frame);
    if (consumed.ok()) {
      EXPECT_LE(consumed.value(), mutated.size());
    }
  }
}

// --- HTTP fallback parsing ---------------------------------------------------

TEST(HttpUtilTest, SniffRecognizesMethodTokens) {
  auto looks = [](const std::string& s) {
    return LooksLikeHttp(reinterpret_cast<const uint8_t*>(s.data()),
                         s.size());
  };
  EXPECT_TRUE(looks("GET /lookup HTTP/1.1"));
  EXPECT_TRUE(looks("POST /x"));
  EXPECT_TRUE(looks("HEAD"));
  EXPECT_FALSE(looks("EMLN-binary-junk"));
  EXPECT_FALSE(looks("ZZZZ"));
}

TEST(HttpUtilTest, ParsesRequestLineAndDecodedParams) {
  const std::string raw =
      "GET /lookup?q=New%20York&k=5&x=a%2Bb HTTP/1.1\r\n"
      "Host: localhost\r\n\r\nTRAILING";
  HttpRequest request;
  auto consumed =
      ParseHttpRequest(reinterpret_cast<const uint8_t*>(raw.data()),
                       raw.size(), 16 << 10, &request);
  ASSERT_TRUE(consumed.ok()) << consumed.status().ToString();
  EXPECT_EQ(consumed.value(), raw.size() - std::strlen("TRAILING"));
  EXPECT_EQ(request.method, "GET");
  EXPECT_EQ(request.path, "/lookup");
  EXPECT_EQ(request.params.at("q"), "New York");
  EXPECT_EQ(request.params.at("k"), "5");
  EXPECT_EQ(request.params.at("x"), "a+b");
}

TEST(HttpUtilTest, IncompleteHeaderBlockNeedsMoreBytes) {
  const std::string raw = "GET /lookup HTTP/1.1\r\nHost: x\r\n";  // No blank.
  HttpRequest request;
  auto consumed =
      ParseHttpRequest(reinterpret_cast<const uint8_t*>(raw.data()),
                       raw.size(), 16 << 10, &request);
  ASSERT_TRUE(consumed.ok());
  EXPECT_EQ(consumed.value(), 0u);
}

TEST(HttpUtilTest, RejectsGarbageAndHeaderBombs) {
  HttpRequest request;
  const std::string garbage = "NOT A REQUEST LINE AT ALL\r\n\r\n";
  EXPECT_FALSE(ParseHttpRequest(
                   reinterpret_cast<const uint8_t*>(garbage.data()),
                   garbage.size(), 16 << 10, &request)
                   .ok());
  // A header block that exceeds the bound errors instead of buffering
  // forever (slow-loris / header-bomb protection).
  std::string bomb = "GET / HTTP/1.1\r\n";
  bomb.append(1024, 'a');
  EXPECT_FALSE(ParseHttpRequest(
                   reinterpret_cast<const uint8_t*>(bomb.data()), bomb.size(),
                   /*max_header_bytes=*/256, &request)
                   .ok());
}

TEST(HttpUtilTest, ResponseCarriesLengthAndClose) {
  const std::string response =
      HttpResponseText(200, "OK", "application/json", "{}");
  EXPECT_NE(response.find("HTTP/1.1 200 OK\r\n"), std::string::npos);
  EXPECT_NE(response.find("Content-Length: 2\r\n"), std::string::npos);
  EXPECT_NE(response.find("Connection: close\r\n"), std::string::npos);
}

TEST(HttpUtilTest, JsonEscapeHandlesQuotesAndControlChars) {
  EXPECT_EQ(JsonEscape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(JsonEscape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(JsonEscape(std::string(1, '\x01')), "\\u0001");
}

TEST(NetStatsTest, PrometheusNetTextListsEveryFamily) {
  const NetStatsSnapshot stats;
  const std::string text = PrometheusNetText(stats);
  const char* families[] = {
      "emblookup_net_connections_accepted_total",
      "emblookup_net_connections_closed_total",
      "emblookup_net_active_connections",
      "emblookup_net_bytes_read_total",
      "emblookup_net_bytes_written_total",
      "emblookup_net_frames_received_total",
      "emblookup_net_frames_sent_total",
      "emblookup_net_http_requests_total",
      "emblookup_net_protocol_errors_total",
      "emblookup_net_overload_rejections_total",
      "emblookup_net_read_pauses_total",
      "emblookup_net_deadlines_propagated_total",
      "emblookup_net_inflight_requests",
  };
  for (const char* family : families) {
    EXPECT_NE(text.find(std::string("# TYPE ") + family), std::string::npos)
        << family;
  }
}

// --- Socket front end, end to end -------------------------------------------

#if defined(__linux__)

/// Manually opened latch used to hold the fake backend inside BulkLookup.
class Gate {
 public:
  void Open() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      open_ = true;
    }
    cv_.notify_all();
  }
  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return open_; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool open_ = false;
};

/// Deterministic backend: entity ids derived from the query text, so
/// remote results can be checked bit for bit against local Submit.
class FakeService : public apps::LookupService {
 public:
  std::string name() const override { return "fake"; }

  std::vector<kg::EntityId> Lookup(const std::string& query,
                                   int64_t k) override {
    std::vector<kg::EntityId> ids;
    kg::EntityId base = 0;
    for (char c : query) base = base * 31 + static_cast<unsigned char>(c);
    for (int64_t i = 0; i < k; ++i) ids.push_back((base + i) % 100000);
    return ids;
  }

  std::vector<std::vector<kg::EntityId>> BulkLookup(
      const std::vector<std::string>& queries, int64_t k) override {
    if (gate_ != nullptr) gate_->Wait();
    std::vector<std::vector<kg::EntityId>> out;
    out.reserve(queries.size());
    for (const auto& q : queries) out.push_back(Lookup(q, k));
    return out;
  }

  void set_gate(Gate* gate) { gate_ = gate; }

 private:
  Gate* gate_ = nullptr;
};

/// Sends raw bytes, reads until the server closes, returns what came back.
std::string RawRoundTrip(int port, const std::string& request) {
  auto connected = ConnectTcp("127.0.0.1", port);
  EXPECT_TRUE(connected.ok()) << connected.status().ToString();
  if (!connected.ok()) return "";
  const int fd = connected.value();
  EXPECT_TRUE(SendAll(fd, request.data(), request.size()).ok());
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  Listener::CloseFd(fd);
  return response;
}

TEST(NetServerTest, RemoteLookupsBitIdenticalToLocalSubmit) {
  FakeService backend;
  serve::LookupServer server(&backend);
  NetServer front;
  ASSERT_TRUE(front.Start(&server, 0).ok());
  RemoteClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", front.port()).ok());
  for (int i = 0; i < 24; ++i) {
    const std::string query = "remote-query-" + std::to_string(i);
    auto remote = client.Lookup(query, 7);
    ASSERT_TRUE(remote.ok()) << remote.status().ToString();
    auto local = server.LookupSync(query, 7);
    ASSERT_TRUE(local.ok()) << local.status().ToString();
    EXPECT_EQ(remote.value().ids, local.value().ids) << query;
    EXPECT_EQ(remote.value().ids, backend.Lookup(query, 7));
  }
}

TEST(NetServerTest, RepeatedRemoteLookupHitsTheQueryCache) {
  FakeService backend;
  serve::LookupServer server(&backend);  // Cache on by default.
  NetServer front;
  ASSERT_TRUE(front.Start(&server, 0).ok());
  RemoteClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", front.port()).ok());
  auto first = client.Lookup("cached-query", 5);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first.value().from_cache);
  auto second = client.Lookup("cached-query", 5);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second.value().from_cache);
  EXPECT_EQ(first.value().ids, second.value().ids);
}

TEST(NetServerTest, WireDeadlineComesBackAsDeadlineExceeded) {
  FakeService backend;
  serve::ServerOptions options;
  // Requests sit in the micro-batch queue well past a 1 ms wire deadline.
  options.max_batch = 1000;
  options.max_delay = std::chrono::duration_cast<microseconds>(
      milliseconds(200));
  options.enable_cache = false;
  serve::LookupServer server(&backend, options);
  NetServer front;
  ASSERT_TRUE(front.Start(&server, 0).ok());
  RemoteClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", front.port()).ok());
  auto result = client.Lookup("doomed", 5, /*deadline_us=*/1000);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(front.Stats().deadlines_propagated, 1u);
}

TEST(NetServerTest, PingPong) {
  FakeService backend;
  serve::LookupServer server(&backend);
  NetServer front;
  ASSERT_TRUE(front.Start(&server, 0).ok());
  RemoteClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", front.port()).ok());
  EXPECT_TRUE(client.Ping().ok());
}

TEST(NetServerTest, HttpFallbackServesLookupsOnTheSamePort) {
  FakeService backend;
  serve::LookupServer server(&backend);
  NetServer front;
  ASSERT_TRUE(front.Start(&server, 0).ok());

  // Connection: close — RawRoundTrip reads to EOF; HTTP/1.1 without the
  // header now keeps the connection alive (covered by the keep-alive test).
  const std::string response = RawRoundTrip(
      front.port(),
      "GET /lookup?q=http-query&k=3 HTTP/1.1\r\nHost: x\r\n"
      "Connection: close\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  // The JSON body carries the same ids the backend computes.
  const std::vector<kg::EntityId> expected = backend.Lookup("http-query", 3);
  std::string ids = "\"ids\":[";
  for (size_t i = 0; i < expected.size(); ++i) {
    if (i != 0) ids += ',';
    ids += std::to_string(expected[i]);
  }
  ids += ']';
  EXPECT_NE(response.find(ids), std::string::npos) << response;

  EXPECT_NE(RawRoundTrip(front.port(),
                         "GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n")
                .find("ok"),
            std::string::npos);
  EXPECT_NE(RawRoundTrip(front.port(), "GET /nope HTTP/1.1\r\n\r\n")
                .find("404"),
            std::string::npos);
  EXPECT_NE(RawRoundTrip(front.port(),
                         "POST /lookup?q=x HTTP/1.1\r\n\r\n")
                .find("405"),
            std::string::npos);
  EXPECT_NE(RawRoundTrip(front.port(),
                         "GET /lookup?k=3 HTTP/1.1\r\n\r\n")
                .find("missing q"),
            std::string::npos);
  EXPECT_EQ(front.Stats().http_requests, 5u);
}

TEST(NetServerTest, HttpKeepAliveServesMultipleRequestsPerConnection) {
  FakeService backend;
  serve::LookupServer server(&backend);
  NetServer front;
  ASSERT_TRUE(front.Start(&server, 0).ok());
  auto connected = ConnectTcp("127.0.0.1", front.port());
  ASSERT_TRUE(connected.ok()) << connected.status().ToString();
  const int fd = connected.value();
  std::string acc;
  const auto read_until = [&](const std::string& needle) {
    char buf[4096];
    while (acc.find(needle) == std::string::npos) {
      const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      ASSERT_GT(n, 0) << "connection closed before \"" << needle << "\"";
      acc.append(buf, static_cast<size_t>(n));
    }
  };
  // HTTP/1.1 without a Connection header defaults to keep-alive: the
  // response announces it and the socket stays open.
  const std::string r1 = "GET /healthz HTTP/1.1\r\n\r\n";
  ASSERT_TRUE(SendAll(fd, r1.data(), r1.size()).ok());
  read_until("ok\n");
  EXPECT_NE(acc.find("Connection: keep-alive"), std::string::npos) << acc;
  // Pipelined pair on the same socket: an async /lookup (reply built off
  // the event loop) immediately followed by an explicit-close /healthz.
  // The second request must wait, buffered, until the first reply is
  // queued, then be served — and close the connection.
  const std::string r2 =
      "GET /lookup?q=keepalive-query&k=2 HTTP/1.1\r\n\r\n"
      "GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n";
  ASSERT_TRUE(SendAll(fd, r2.data(), r2.size()).ok());
  read_until("\"ids\":");
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    acc.append(buf, static_cast<size_t>(n));
  }
  Listener::CloseFd(fd);
  EXPECT_NE(acc.find("Connection: close"), std::string::npos) << acc;
  EXPECT_LT(acc.find("\"ids\":"), acc.find("Connection: close")) << acc;
  EXPECT_EQ(front.Stats().http_requests, 3u);
  EXPECT_EQ(front.Stats().http_keepalive_reuses, 2u);
}

TEST(NetServerTest, ReconnectRecoversAfterServerRestart) {
  FakeService backend;
  serve::LookupServer server(&backend);
  auto front = std::make_unique<NetServer>();
  ASSERT_TRUE(front->Start(&server, 0).ok());
  const int port = front->port();
  RemoteClient client;
  EXPECT_FALSE(client.Reconnect(1).ok());  // Before any Connect.
  ASSERT_TRUE(client.Connect("127.0.0.1", port).ok());
  EXPECT_TRUE(client.Ping().ok());
  front.reset();  // Server goes away; the client's socket is now dead.
  EXPECT_FALSE(client.Ping().ok());
  // No listener: Reconnect exhausts its backoff attempts and reports it.
  EXPECT_FALSE(client.Reconnect(2, std::chrono::milliseconds(1)).ok());
  NetServer second;
  ASSERT_TRUE(second.Start(&server, port).ok());
  ASSERT_TRUE(client.Reconnect(5, std::chrono::milliseconds(1)).ok());
  EXPECT_TRUE(client.Ping().ok());
  auto result = client.Lookup("after-restart", 3);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().ids, backend.Lookup("after-restart", 3));
}

TEST(NetServerTest, GarbagePreambleGetsErrorFrameThenClose) {
  FakeService backend;
  serve::LookupServer server(&backend);
  NetServer front;
  ASSERT_TRUE(front.Start(&server, 0).ok());
  // Neither the binary magic nor an HTTP method token.
  const std::string response = RawRoundTrip(front.port(), "ZZZZgarbage");
  Frame frame;
  auto consumed =
      DecodeFrame(reinterpret_cast<const uint8_t*>(response.data()),
                  response.size(), kDefaultMaxPayloadBytes, &frame);
  ASSERT_TRUE(consumed.ok()) << consumed.status().ToString();
  ASSERT_GT(consumed.value(), 0u);
  EXPECT_EQ(frame.type, FrameType::kError);
  EXPECT_EQ(frame.request_id, 0u);  // Unattributable.
  EXPECT_EQ(frame.error_code, StatusCode::kInvalidArgument);
  EXPECT_EQ(front.Stats().protocol_errors, 1u);
}

TEST(NetServerTest, OversizedDeclaredPayloadIsRejected) {
  FakeService backend;
  serve::LookupServer server(&backend);
  NetServer front;
  ASSERT_TRUE(front.Start(&server, 0).ok());
  std::string bytes;
  AppendLookupRequest(&bytes, 9, "q", 3, 0);
  const uint32_t huge = 1u << 30;  // Way past max_frame_payload.
  std::memcpy(&bytes[16], &huge, sizeof(huge));
  const std::string response = RawRoundTrip(front.port(), bytes);
  Frame frame;
  auto consumed =
      DecodeFrame(reinterpret_cast<const uint8_t*>(response.data()),
                  response.size(), kDefaultMaxPayloadBytes, &frame);
  ASSERT_TRUE(consumed.ok() && consumed.value() > 0);
  EXPECT_EQ(frame.type, FrameType::kError);
  EXPECT_EQ(front.Stats().protocol_errors, 1u);
}

TEST(NetServerTest, CrcBitFlipOverTheSocketClosesTheConnection) {
  FakeService backend;
  serve::LookupServer server(&backend);
  NetServer front;
  ASSERT_TRUE(front.Start(&server, 0).ok());
  std::string bytes;
  AppendLookupRequest(&bytes, 4, "crc-query", 5, 0);
  bytes[kFrameHeaderBytes + 2] ^= 0x10;  // Flip one payload bit.
  const std::string response = RawRoundTrip(front.port(), bytes);
  Frame frame;
  auto consumed =
      DecodeFrame(reinterpret_cast<const uint8_t*>(response.data()),
                  response.size(), kDefaultMaxPayloadBytes, &frame);
  ASSERT_TRUE(consumed.ok() && consumed.value() > 0);
  EXPECT_EQ(frame.type, FrameType::kError);
  EXPECT_EQ(frame.error_code, StatusCode::kIoError);
  EXPECT_EQ(front.Stats().protocol_errors, 1u);
}

TEST(NetServerTest, SlowLorisByteAtATimeFramingStillServes) {
  FakeService backend;
  serve::LookupServer server(&backend);
  NetServer front;
  ASSERT_TRUE(front.Start(&server, 0).ok());
  auto connected = ConnectTcp("127.0.0.1", front.port());
  ASSERT_TRUE(connected.ok());
  const int fd = connected.value();
  std::string bytes;
  AppendLookupRequest(&bytes, 21, "dripped-query", 4, 0);
  for (char c : bytes) {
    ASSERT_TRUE(SendAll(fd, &c, 1).ok());
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  // The fully dripped frame must still produce a correct response.
  std::string response;
  char buf[1024];
  Frame frame;
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    ASSERT_GT(n, 0) << "server closed before replying";
    response.append(buf, static_cast<size_t>(n));
    auto consumed =
        DecodeFrame(reinterpret_cast<const uint8_t*>(response.data()),
                    response.size(), kDefaultMaxPayloadBytes, &frame);
    ASSERT_TRUE(consumed.ok());
    if (consumed.value() > 0) break;
  }
  Listener::CloseFd(fd);
  EXPECT_EQ(frame.type, FrameType::kLookupResponse);
  EXPECT_EQ(frame.request_id, 21u);
  EXPECT_EQ(frame.ids, backend.Lookup("dripped-query", 4));
}

TEST(NetServerTest, TruncatedFrameThenCloseLeavesServerHealthy) {
  FakeService backend;
  serve::LookupServer server(&backend);
  NetServer front;
  ASSERT_TRUE(front.Start(&server, 0).ok());
  {
    auto connected = ConnectTcp("127.0.0.1", front.port());
    ASSERT_TRUE(connected.ok());
    std::string bytes;
    AppendLookupRequest(&bytes, 2, "never-finished", 5, 0);
    ASSERT_TRUE(SendAll(connected.value(), bytes.data(), 10).ok());
    Listener::CloseFd(connected.value());  // Abandon mid-frame.
  }
  // The server must keep serving other connections.
  RemoteClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", front.port()).ok());
  auto result = client.Lookup("healthy", 3);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().ids, backend.Lookup("healthy", 3));
}

TEST(NetServerTest, PerConnectionOverloadShedsWithExplicitUnavailable) {
  FakeService backend;
  Gate gate;
  backend.set_gate(&gate);
  serve::ServerOptions options;
  options.max_batch = 1;
  options.max_delay = microseconds(0);
  options.enable_cache = false;
  serve::LookupServer server(&backend, options);
  NetServerOptions net_options;
  net_options.event_loops = 1;
  net_options.max_inflight_per_conn = 2;
  NetServer front;
  ASSERT_TRUE(front.Start(&server, 0, net_options).ok());
  RemoteClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", front.port()).ok());
  // With the backend gated shut, at most 2 requests can be in flight;
  // the rest must be shed with an explicit Unavailable reply.
  const int total = 10;
  for (int i = 0; i < total; ++i) {
    ASSERT_TRUE(client
                    .SendLookup(static_cast<uint64_t>(i + 1),
                                "overload-" + std::to_string(i), 3)
                    .ok());
  }
  // Release the backend once the shed replies are on their way.
  int ok = 0, shed = 0;
  bool opened = false;
  for (int i = 0; i < total; ++i) {
    if (!opened && i == total - 2) {
      gate.Open();
      opened = true;
    }
    auto reply = client.ReadReply();
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    if (reply.value().type == FrameType::kLookupResponse) {
      ++ok;
    } else {
      ASSERT_EQ(reply.value().type, FrameType::kError);
      EXPECT_EQ(reply.value().error_code, StatusCode::kUnavailable);
      ++shed;
    }
  }
  EXPECT_EQ(ok + shed, total);
  EXPECT_GE(shed, 1);
  EXPECT_GE(ok, 2);
  EXPECT_EQ(front.Stats().overload_rejections,
            static_cast<uint64_t>(shed));
}

TEST(NetServerTest, StopDrainsInFlightRepliesBeforeClosing) {
  FakeService backend;
  serve::LookupServer server(&backend);
  NetServer front;
  ASSERT_TRUE(front.Start(&server, 0).ok());
  RemoteClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", front.port()).ok());
  const int total = 5;
  for (int i = 0; i < total; ++i) {
    ASSERT_TRUE(client
                    .SendLookup(static_cast<uint64_t>(i + 1),
                                "drain-" + std::to_string(i), 3)
                    .ok());
  }
  // Wait until the server has produced every reply, then Stop: the drain
  // must flush them to the socket before tearing the connection down.
  while (front.Stats().frames_sent < static_cast<uint64_t>(total)) {
    std::this_thread::sleep_for(milliseconds(1));
  }
  front.Stop();
  for (int i = 0; i < total; ++i) {
    auto reply = client.ReadReply();
    ASSERT_TRUE(reply.ok()) << "reply " << i << ": "
                            << reply.status().ToString();
    EXPECT_EQ(reply.value().type, FrameType::kLookupResponse);
  }
  // After the drained replies, the server-side close surfaces as EOF.
  EXPECT_FALSE(client.ReadReply().ok());
}

TEST(NetServerTest, StatsCountersTrackTraffic) {
  FakeService backend;
  serve::LookupServer server(&backend);
  NetServer front;
  ASSERT_TRUE(front.Start(&server, 0).ok());
  {
    RemoteClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", front.port()).ok());
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(client.Lookup("stats-" + std::to_string(i), 3).ok());
    }
    ASSERT_TRUE(client.Ping().ok());
  }
  // The client destructor closed its socket; wait for the loop to notice.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (front.Stats().active_connections != 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(milliseconds(1));
  }
  const NetStatsSnapshot stats = front.Stats();
  EXPECT_EQ(stats.connections_accepted, 1u);
  EXPECT_EQ(stats.connections_closed, 1u);
  EXPECT_EQ(stats.active_connections, 0);
  EXPECT_EQ(stats.frames_received, 5u);  // 4 lookups + 1 ping.
  EXPECT_EQ(stats.frames_sent, 5u);
  EXPECT_GT(stats.bytes_read, 0u);
  EXPECT_GT(stats.bytes_written, 0u);
  EXPECT_EQ(stats.inflight_requests, 0);
  EXPECT_EQ(stats.protocol_errors, 0u);
}

TEST(NetServerTest, StartRejectsDoubleStartAndNullServer) {
  FakeService backend;
  serve::LookupServer server(&backend);
  NetServer front;
  EXPECT_EQ(front.Start(nullptr, 0).code(), StatusCode::kInvalidArgument);
  ASSERT_TRUE(front.Start(&server, 0).ok());
  EXPECT_EQ(front.Start(&server, 0).code(),
            StatusCode::kFailedPrecondition);
  front.Stop();
  front.Stop();  // Idempotent.
}

#endif  // defined(__linux__)

}  // namespace
}  // namespace emblookup::net
