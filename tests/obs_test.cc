// Tests for the src/obs observability subsystem: span nesting and
// cross-thread recording, sampling determinism, Prometheus text exposition
// validity, slow-query JSON round-trips, the percentile overflow-bucket
// clamp, the metrics HTTP endpoint, and the serve-side integration
// (tracing through LookupServer, exporter family coverage).

#include <algorithm>
#include <cmath>
#include <cstring>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#ifndef _WIN32
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

#include <gtest/gtest.h>

#include "apps/lookup_service.h"
#include "obs/histogram.h"
#include "obs/http_endpoint.h"
#include "obs/prometheus.h"
#include "obs/slow_log.h"
#include "obs/trace.h"
#include "serve/exporter.h"
#include "serve/lookup_server.h"

namespace emblookup::obs {
namespace {

// --- Histogram percentiles ---------------------------------------------------

TEST(HistogramTest, PercentileInterpolatesWithinBuckets) {
  Histogram h(Histogram::ExponentialBuckets(10.0, 2.0, 4));  // 10,20,40,80
  for (int i = 0; i < 100; ++i) h.Record(15.0);  // All in (10, 20].
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.total, 100u);
  const double p50 = snap.Percentile(0.5);
  EXPECT_GE(p50, 10.0);
  EXPECT_LE(p50, 20.0);
}

TEST(HistogramTest, PercentileClampsOverflowBucketToLastFiniteBound) {
  // The regression this pins: a rank landing in the +inf overflow bucket
  // must clamp to the last finite bound, never report +inf or garbage.
  Histogram h({10.0, 100.0});
  for (int i = 0; i < 10; ++i) h.Record(5.0);
  for (int i = 0; i < 90; ++i) h.Record(1e9);  // Overflow bucket.
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_DOUBLE_EQ(snap.Percentile(0.99), 100.0);
  EXPECT_DOUBLE_EQ(snap.Percentile(1.0), 100.0);
  EXPECT_TRUE(std::isfinite(snap.Percentile(0.999)));
}

TEST(HistogramTest, SnapshotCountsAreNonCumulative) {
  Histogram h({1.0, 2.0});
  h.Record(0.5);
  h.Record(1.5);
  h.Record(99.0);
  const HistogramSnapshot snap = h.Snapshot();
  ASSERT_EQ(snap.counts.size(), 3u);  // Two finite + overflow.
  EXPECT_EQ(snap.counts[0], 1u);
  EXPECT_EQ(snap.counts[1], 1u);
  EXPECT_EQ(snap.counts[2], 1u);
  EXPECT_EQ(snap.total, 3u);
  EXPECT_DOUBLE_EQ(snap.sum, 0.5 + 1.5 + 99.0);
}

// --- Span recording ----------------------------------------------------------

TEST(TraceTest, SpansNestUnderTheBoundParent) {
  TraceContext trace(7);
  {
    ScopedTrace bind(&trace, -1);
    Span outer(Stage::kBatchExecute);
    {
      Span inner(Stage::kEncode);
    }
    {
      Span inner2(Stage::kMainScan);
    }
  }
  const FinishedTrace done = trace.Finish("q", 5, false);
  EXPECT_EQ(done.trace_id, 7u);
  ASSERT_EQ(done.spans.size(), 3u);
  // Recording order: outer claimed its slot first.
  EXPECT_EQ(done.spans[0].stage, Stage::kBatchExecute);
  EXPECT_EQ(done.spans[0].parent, -1);
  EXPECT_EQ(done.spans[1].stage, Stage::kEncode);
  EXPECT_EQ(done.spans[1].parent, 0);
  EXPECT_EQ(done.spans[2].stage, Stage::kMainScan);
  EXPECT_EQ(done.spans[2].parent, 0);
  // Children start after their parent and end within the trace.
  EXPECT_GE(done.spans[1].start_us, done.spans[0].start_us);
  EXPECT_LE(done.spans[1].start_us, done.spans[2].start_us);
  EXPECT_EQ(done.dropped_spans, 0u);
}

TEST(TraceTest, SpansBeyondTheCapAreCountedNotRecorded) {
  TraceContext trace(1);
  ScopedTrace bind(&trace, -1);
  for (int i = 0; i < TraceContext::kMaxSpans + 10; ++i) {
    Span span(Stage::kEncode);
  }
  const FinishedTrace done = trace.Finish("q", 1, false);
  EXPECT_EQ(done.spans.size(), static_cast<size_t>(TraceContext::kMaxSpans));
  EXPECT_EQ(done.dropped_spans, 10u);
}

TEST(TraceTest, UnboundSpansOnlyFeedStageHistograms) {
  // No trace bound: Span must be safe and still record globally.
  const uint64_t before =
      StageMetrics::Global().SnapshotAll()
          .stages[static_cast<int>(Stage::kTopKMerge)].total;
  {
    Span span(Stage::kTopKMerge);
  }
  const uint64_t after =
      StageMetrics::Global().SnapshotAll()
          .stages[static_cast<int>(Stage::kTopKMerge)].total;
  EXPECT_EQ(after, before + 1);
}

TEST(TraceTest, ConcurrentSpanRecordingIsRaceFree) {
  // Spans recorded from many threads into one trace: slot claims are
  // atomic, each slot written once. Run under TSan to pin the guarantee.
  TraceContext trace(42);
  const TraceBinding binding{&trace, -1};
  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 4;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      ScopedTrace bind(binding);
      for (int i = 0; i < kSpansPerThread; ++i) {
        Span span(Stage::kFlatScan);
      }
    });
  }
  for (auto& t : threads) t.join();  // Happens-before edge for Finish.
  const FinishedTrace done = trace.Finish("q", 3, false);
  EXPECT_EQ(done.spans.size() + done.dropped_spans,
            static_cast<size_t>(kThreads * kSpansPerThread));
  for (const SpanRecord& s : done.spans) {
    EXPECT_EQ(s.stage, Stage::kFlatScan);
    EXPECT_EQ(s.parent, -1);
    EXPECT_GE(s.duration_us, 0.0);
  }
}

TEST(TraceTest, ScopedTraceRestoresThePreviousBinding) {
  TraceContext a(1), b(2);
  ScopedTrace bind_a(&a, -1);
  EXPECT_EQ(CurrentBinding().ctx, &a);
  {
    ScopedTrace bind_b(&b, 3);
    EXPECT_EQ(CurrentBinding().ctx, &b);
    EXPECT_EQ(CurrentBinding().parent, 3);
  }
  EXPECT_EQ(CurrentBinding().ctx, &a);
}

// --- Sampling ----------------------------------------------------------------

TEST(SamplerTest, FixedSeedYieldsDeterministicDecisions) {
  std::vector<bool> first, second;
  TraceSampler s1(0.3, 99), s2(0.3, 99);
  for (int i = 0; i < 1000; ++i) first.push_back(s1.Sample());
  for (int i = 0; i < 1000; ++i) second.push_back(s2.Sample());
  EXPECT_EQ(first, second);
  // A different seed decides differently somewhere.
  TraceSampler s3(0.3, 100);
  std::vector<bool> third;
  for (int i = 0; i < 1000; ++i) third.push_back(s3.Sample());
  EXPECT_NE(first, third);
}

TEST(SamplerTest, RateEndpointsAreExact) {
  TraceSampler none(0.0), all(1.0);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(none.Sample());
    EXPECT_TRUE(all.Sample());
  }
}

TEST(SamplerTest, RateIsApproximatelyHonored) {
  TraceSampler s(0.25, 7);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += s.Sample() ? 1 : 0;
  EXPECT_GT(hits, 2000);
  EXPECT_LT(hits, 3000);
}

// --- Trace ring --------------------------------------------------------------

TEST(TraceRingTest, OverwritesOldestBeyondCapacity) {
  TraceRing ring(3);
  for (uint64_t i = 1; i <= 5; ++i) {
    FinishedTrace t;
    t.trace_id = i;
    ring.Push(std::move(t));
  }
  const std::vector<FinishedTrace> kept = ring.Snapshot();
  ASSERT_EQ(kept.size(), 3u);
  EXPECT_EQ(kept[0].trace_id, 3u);  // Oldest retained first.
  EXPECT_EQ(kept[2].trace_id, 5u);
  EXPECT_EQ(ring.total_pushed(), 5u);
}

// --- Prometheus text ---------------------------------------------------------

/// Validates `text` as Prometheus 0.0.4 exposition: families declared
/// before samples, cumulative non-decreasing histogram buckets ending in
/// le="+Inf" whose count equals _count. Fills `families` (name -> TYPE).
/// Void-returning so gtest ASSERT_* can bail out of it.
void ValidateExposition(const std::string& text,
                        std::map<std::string, std::string>* out) {
  std::map<std::string, std::string>& families = *out;
  families.clear();
  std::istringstream in(text);
  std::string line;
  std::string last_hist_family;
  uint64_t last_bucket = 0;
  bool saw_inf = false;
  while (std::getline(in, line)) {
    ASSERT_FALSE(line.empty()) << "blank line in exposition";
    if (line.rfind("# HELP ", 0) == 0) continue;
    if (line.rfind("# TYPE ", 0) == 0) {
      std::istringstream hdr(line.substr(7));
      std::string name, type;
      hdr >> name >> type;
      ASSERT_TRUE(type == "counter" || type == "gauge" || type == "histogram")
          << line;
      ASSERT_EQ(families.count(name), 0u) << "duplicate TYPE for " << name;
      families[name] = type;
      continue;
    }
    // Sample line: name[{labels}] value
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    std::string series = line.substr(0, space);
    const std::string value = line.substr(space + 1);
    ASSERT_FALSE(value.empty()) << line;
    std::string labels;
    const size_t brace = series.find('{');
    if (brace != std::string::npos) {
      ASSERT_EQ(series.back(), '}') << line;
      labels = series.substr(brace + 1, series.size() - brace - 2);
      series = series.substr(0, brace);
    }
    // The sample's family must have been declared: histogram samples use
    // the _bucket/_sum/_count suffixes.
    std::string family = series;
    for (const char* suffix : {"_bucket", "_sum", "_count"}) {
      const size_t n = std::strlen(suffix);
      if (family.size() > n &&
          family.compare(family.size() - n, n, suffix) == 0 &&
          families.count(family.substr(0, family.size() - n)) > 0) {
        family = family.substr(0, family.size() - n);
        break;
      }
    }
    ASSERT_TRUE(families.count(family) > 0) << "undeclared family: " << line;
    if (series == family + "_bucket") {
      ASSERT_EQ(families[family], "histogram");
      if (family != last_hist_family) {
        last_hist_family = family;
        last_bucket = 0;
        saw_inf = false;
      }
      const uint64_t count = std::stoull(value);
      ASSERT_GE(count, last_bucket) << "non-cumulative buckets: " << line;
      last_bucket = count;
      if (labels.find("le=\"+Inf\"") != std::string::npos) saw_inf = true;
    } else if (series == family + "_count" &&
               families[family] == "histogram") {
      ASSERT_TRUE(saw_inf) << family << " buckets did not end at +Inf";
      ASSERT_EQ(std::stoull(value), last_bucket)
          << family << "_count != +Inf bucket";
      last_hist_family.clear();
    }
  }
}

TEST(PrometheusTest, WriterEmitsValidExposition) {
  Histogram h(Histogram::ExponentialBuckets(1.0, 10.0, 3));
  h.Record(0.5);
  h.Record(50.0);
  h.Record(5000.0);  // Overflow.
  PrometheusWriter w;
  w.Counter("test_requests_total", "Requests.", 12);
  w.Gauge("test_depth", "Depth.", 3.5);
  w.Histogram("test_latency", "Latency.", h.Snapshot());
  w.Histogram("test_latency", "Latency.", h.Snapshot(),
              {{"stage", "enco\"de\n"}});  // Escaping exercised.
  const std::string text = w.Finish();
  std::map<std::string, std::string> families;
  ASSERT_NO_FATAL_FAILURE(ValidateExposition(text, &families));
  EXPECT_EQ(families["test_requests_total"], "counter");
  EXPECT_EQ(families["test_depth"], "gauge");
  EXPECT_EQ(families["test_latency"], "histogram");
  // The labelled series re-used the family header (exactly one TYPE line).
  EXPECT_EQ(text.find("# TYPE test_latency "),
            text.rfind("# TYPE test_latency "));
  // Label escaping: quote and newline are escaped in the output.
  EXPECT_NE(text.find("stage=\"enco\\\"de\\n\""), std::string::npos);
}

// --- Slow-query JSON ---------------------------------------------------------

FinishedTrace MakeTrace() {
  FinishedTrace t;
  t.trace_id = 99;
  t.query = "weird \"query\"\twith\nescapes\\";
  t.k = 10;
  t.from_cache = false;
  t.total_us = 1234.5;
  t.dropped_spans = 2;
  t.spans.push_back({Stage::kQueueWait, -1, 0.0, 1000.25});
  t.spans.push_back({Stage::kServeDispatch, -1, 1000.25, 234.25});
  t.spans.push_back({Stage::kMainScan, 1, 1100.0, 100.5});
  return t;
}

TEST(SlowLogTest, JsonRoundTripsLosslessly) {
  const FinishedTrace t = MakeTrace();
  const std::string line = RenderSlowQueryJson(t);
  auto parsed = ParseSlowQueryJson(line);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const FinishedTrace& p = parsed.value();
  EXPECT_EQ(p.trace_id, t.trace_id);
  EXPECT_EQ(p.query, t.query);
  EXPECT_EQ(p.k, t.k);
  EXPECT_EQ(p.from_cache, t.from_cache);
  EXPECT_NEAR(p.total_us, t.total_us, 1e-3);
  EXPECT_EQ(p.dropped_spans, t.dropped_spans);
  ASSERT_EQ(p.spans.size(), t.spans.size());
  for (size_t i = 0; i < t.spans.size(); ++i) {
    EXPECT_EQ(p.spans[i].stage, t.spans[i].stage) << i;
    EXPECT_EQ(p.spans[i].parent, t.spans[i].parent) << i;
    EXPECT_NEAR(p.spans[i].start_us, t.spans[i].start_us, 1e-3) << i;
    EXPECT_NEAR(p.spans[i].duration_us, t.spans[i].duration_us, 1e-3) << i;
  }
}

TEST(SlowLogTest, ParserRejectsMalformedLines) {
  EXPECT_FALSE(ParseSlowQueryJson("").ok());
  EXPECT_FALSE(ParseSlowQueryJson("{").ok());
  EXPECT_FALSE(ParseSlowQueryJson("{\"bogus_key\":1}").ok());
  EXPECT_FALSE(ParseSlowQueryJson(
      "{\"trace_id\":1,\"spans\":[{\"stage\":\"no_such_stage\"}]}").ok());
  EXPECT_FALSE(ParseSlowQueryJson("{\"trace_id\":1} trailing").ok());
}

TEST(SlowLogTest, ObserveHonorsThresholdAndAppendsToFile) {
  const std::string path = ::testing::TempDir() + "/slow_test.jsonl";
  std::remove(path.c_str());
  SlowQueryLog log;
  ASSERT_TRUE(log.Open(1000.0, path).ok());
  FinishedTrace fast = MakeTrace();
  fast.total_us = 10.0;
  EXPECT_FALSE(log.Observe(fast));
  FinishedTrace slow = MakeTrace();
  slow.total_us = 5000.0;
  EXPECT_TRUE(log.Observe(slow));
  EXPECT_EQ(log.logged(), 1u);
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[4096];
  ASSERT_NE(std::fgets(buf, sizeof(buf), f), nullptr);
  std::fclose(f);
  std::string line(buf);
  ASSERT_FALSE(line.empty());
  ASSERT_EQ(line.back(), '\n');
  line.pop_back();
  auto parsed = ParseSlowQueryJson(line);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().query, slow.query);
  std::remove(path.c_str());
}

TEST(SlowLogTest, ZeroThresholdStaysDisabled) {
  SlowQueryLog log;
  ASSERT_TRUE(log.Open(0.0, "").ok());
  EXPECT_FALSE(log.enabled());
  EXPECT_FALSE(log.Observe(MakeTrace()));
}

// --- HTTP endpoint -----------------------------------------------------------

#ifndef _WIN32

/// One blocking GET against 127.0.0.1:port; returns the raw response.
std::string HttpGet(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const char req[] = "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n";
  EXPECT_GT(::send(fd, req, sizeof(req) - 1, 0), 0);
  std::string resp;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) resp.append(buf, n);
  ::close(fd);
  return resp;
}

TEST(HttpEndpointTest, ServesRendererOutputOnEphemeralPort) {
  MetricsHttpServer server;
  ASSERT_TRUE(server.Start(0, [] { return std::string("hello_metric 1\n"); })
                  .ok());
  ASSERT_GT(server.port(), 0);
  for (int i = 0; i < 3; ++i) {  // Sequential scrapes on one listener.
    const std::string resp = HttpGet(server.port());
    EXPECT_NE(resp.find("HTTP/1.1 200 OK"), std::string::npos);
    EXPECT_NE(resp.find("text/plain; version=0.0.4"), std::string::npos);
    EXPECT_NE(resp.find("hello_metric 1\n"), std::string::npos);
  }
  server.Stop();
  EXPECT_FALSE(server.running());
}

TEST(HttpEndpointTest, DoubleStartFailsAndStopIsIdempotent) {
  MetricsHttpServer server;
  ASSERT_TRUE(server.Start(0, [] { return std::string(); }).ok());
  EXPECT_FALSE(server.Start(0, [] { return std::string(); }).ok());
  server.Stop();
  server.Stop();
}

#endif  // _WIN32

// --- Serve integration -------------------------------------------------------

/// Deterministic backend (mirrors serve_test's FakeService).
class FakeService : public apps::LookupService {
 public:
  std::string name() const override { return "fake"; }

  std::vector<kg::EntityId> Lookup(const std::string& query,
                                   int64_t k) override {
    std::vector<kg::EntityId> ids;
    kg::EntityId base = 0;
    for (char c : query) base = base * 31 + static_cast<unsigned char>(c);
    for (int64_t i = 0; i < k; ++i) ids.push_back((base + i) % 100000);
    return ids;
  }

  std::vector<std::vector<kg::EntityId>> BulkLookup(
      const std::vector<std::string>& queries, int64_t k) override {
    std::vector<std::vector<kg::EntityId>> out;
    out.reserve(queries.size());
    for (const auto& q : queries) out.push_back(Lookup(q, k));
    return out;
  }
};

TEST(ServeTracingTest, FullSamplingTracesEveryRequest) {
  FakeService backend;
  serve::ServerOptions options;
  options.obs.trace_sample_rate = 1.0;
  serve::LookupServer server(&backend, options);
  for (int i = 0; i < 20; ++i) {
    auto result = server.LookupSync("query " + std::to_string(i), 5);
    ASSERT_TRUE(result.ok());
  }
  server.Shutdown();
  const serve::LookupServer::ObsStats stats = server.GetObsStats();
  EXPECT_EQ(stats.traces_sampled, 20u);
  const std::vector<FinishedTrace> traces = server.RecentTraces();
  ASSERT_EQ(traces.size(), 20u);
  for (const FinishedTrace& t : traces) {
    EXPECT_GT(t.total_us, 0.0);
    // Every trace carries at least queue_wait + serve_dispatch, and cache
    // misses add cache_probe + batch_execute.
    ASSERT_GE(t.spans.size(), 2u);
    EXPECT_EQ(t.spans[0].stage, Stage::kQueueWait);
    EXPECT_EQ(t.spans[1].stage, Stage::kServeDispatch);
    EXPECT_EQ(t.spans[1].parent, -1);
  }
}

TEST(ServeTracingTest, ZeroSamplingTracesNothing) {
  FakeService backend;
  serve::ServerOptions options;  // trace_sample_rate = 0 by default.
  serve::LookupServer server(&backend, options);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(server.LookupSync("q" + std::to_string(i), 3).ok());
  }
  server.Shutdown();
  EXPECT_EQ(server.GetObsStats().traces_sampled, 0u);
  EXPECT_TRUE(server.RecentTraces().empty());
}

TEST(ServeTracingTest, SlowQueryThresholdForcesTracingAndLogs) {
  const std::string path = ::testing::TempDir() + "/serve_slow.jsonl";
  std::remove(path.c_str());
  FakeService backend;
  serve::ServerOptions options;
  options.obs.slow_query_us = 0.001;  // Everything is "slow".
  options.obs.slow_log_path = path;
  serve::LookupServer server(&backend, options);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(server.LookupSync("slow " + std::to_string(i), 3).ok());
  }
  server.Shutdown();
  const serve::LookupServer::ObsStats stats = server.GetObsStats();
  EXPECT_EQ(stats.traces_sampled, 5u);  // Forced despite rate 0.
  EXPECT_EQ(stats.slow_queries_logged, 5u);
  // Every logged line round-trips through the parser.
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[8192];
  int lines = 0;
  while (std::fgets(buf, sizeof(buf), f) != nullptr) {
    std::string line(buf);
    while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
      line.pop_back();
    }
    auto parsed = ParseSlowQueryJson(line);
    EXPECT_TRUE(parsed.ok()) << parsed.status().ToString() << ": " << line;
    ++lines;
  }
  std::fclose(f);
  EXPECT_EQ(lines, 5);
  std::remove(path.c_str());
}

TEST(ServeTracingTest, ExporterCoversEveryExpectedFamily) {
  FakeService backend;
  serve::ServerOptions options;
  options.obs.trace_sample_rate = 1.0;
  serve::LookupServer server(&backend, options);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(server.LookupSync("fam " + std::to_string(i), 4).ok());
  }
  const std::string text = serve::PrometheusText(server);
  std::map<std::string, std::string> families;
  ASSERT_NO_FATAL_FAILURE(ValidateExposition(text, &families));
  const char* required[] = {
      "emblookup_requests_submitted_total", "emblookup_requests_completed_total",
      "emblookup_requests_shed_total", "emblookup_requests_expired_total",
      "emblookup_cache_hits_total", "emblookup_cache_misses_total",
      "emblookup_batches_executed_total", "emblookup_index_swaps_total",
      "emblookup_updates_applied_total", "emblookup_compactions_total",
      "emblookup_queue_wait_microseconds", "emblookup_batch_size",
      "emblookup_e2e_latency_microseconds", "emblookup_cache_entries",
      "emblookup_cache_bytes", "emblookup_cache_evictions_total",
      "emblookup_cache_stale_drops_total",
      "emblookup_stage_latency_microseconds",
      "emblookup_traces_sampled_total", "emblookup_slow_queries_total",
      "emblookup_trace_spans_dropped_total",
  };
  for (const char* family : required) {
    EXPECT_TRUE(families.count(family) > 0) << "missing family: " << family;
  }
  // Every stage appears as a labelled series, even idle ones.
  for (int s = 0; s < kNumStages; ++s) {
    const std::string needle =
        std::string("stage=\"") + StageName(static_cast<Stage>(s)) + "\"";
    EXPECT_NE(text.find(needle), std::string::npos)
        << "missing stage series: " << needle;
  }
}

}  // namespace
}  // namespace emblookup::obs
