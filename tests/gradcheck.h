#ifndef EMBLOOKUP_TESTS_GRADCHECK_H_
#define EMBLOOKUP_TESTS_GRADCHECK_H_

#include <cmath>
#include <functional>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "tensor/tensor.h"

namespace emblookup::tensor {

/// Checks analytic gradients of `fn` (a scalar-valued tensor function of
/// `inputs`) against central finite differences. Every input must have
/// requires_grad set.
inline void ExpectGradientsMatch(
    const std::function<Tensor(const std::vector<Tensor>&)>& fn,
    std::vector<Tensor> inputs, float eps = 1e-3f, float tol = 2e-2f) {
  // Analytic pass.
  Tensor loss = fn(inputs);
  ASSERT_EQ(loss.size(), 1) << "gradcheck needs a scalar output";
  loss.Backward();
  std::vector<std::vector<float>> analytic;
  for (Tensor& in : inputs) {
    analytic.emplace_back(in.grad(), in.grad() + in.size());
  }

  // Numeric pass.
  for (size_t t = 0; t < inputs.size(); ++t) {
    Tensor& in = inputs[t];
    for (int64_t i = 0; i < in.size(); ++i) {
      const float saved = in.data()[i];
      in.data()[i] = saved + eps;
      const float up = fn(inputs).item();
      in.data()[i] = saved - eps;
      const float down = fn(inputs).item();
      in.data()[i] = saved;
      const float numeric = (up - down) / (2.0f * eps);
      const float diff = std::abs(numeric - analytic[t][i]);
      const float scale =
          std::max({1.0f, std::abs(numeric), std::abs(analytic[t][i])});
      EXPECT_LE(diff / scale, tol)
          << "input " << t << " element " << i << ": analytic "
          << analytic[t][i] << " vs numeric " << numeric;
    }
  }
}

/// Random tensor with entries in [-1, 1].
inline Tensor RandomTensor(Shape shape, Rng* rng, bool requires_grad = true) {
  Tensor t = Tensor::Zeros(std::move(shape), requires_grad);
  for (int64_t i = 0; i < t.size(); ++i) {
    t.data()[i] = rng->UniformFloat(-1.0f, 1.0f);
  }
  return t;
}

}  // namespace emblookup::tensor

#endif  // EMBLOOKUP_TESTS_GRADCHECK_H_
