// Tests for the src/store snapshot subsystem: container round trips,
// corruption robustness (every damaged input must surface as a Status,
// never a crash), zero-copy index loading equivalence across the ANN
// backends, SIMD-vs-scalar parity over mmap'd payloads, and the
// EmbLookup / LookupServer wiring.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ann/flat_index.h"
#include "ann/hnsw_index.h"
#include "ann/ivf_index.h"
#include "ann/kernels.h"
#include "ann/pq_index.h"
#include "ann/sq8_index.h"
#include "common/rng.h"
#include "core/emblookup.h"
#include "core/entity_index.h"
#include "kg/synthetic_kg.h"
#include "apps/lookup_services.h"
#include "serve/lookup_server.h"
#include "store/format.h"
#include "store/index_io.h"
#include "store/snapshot_reader.h"
#include "store/snapshot_writer.h"

namespace emblookup {
namespace {

namespace k = ann::kernels;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::vector<uint8_t> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path,
                    const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

/// A small two-section snapshot used by the container tests.
std::string WriteSampleSnapshot(const std::string& name) {
  static const std::vector<uint8_t> payload_a = {1, 2, 3, 4, 5, 6, 7};
  store::SnapshotWriter writer;
  writer.AddSection(store::SectionId::kRowToEntity, payload_a.data(),
                    payload_a.size());
  std::vector<uint8_t> payload_b(1000);
  for (size_t i = 0; i < payload_b.size(); ++i) {
    payload_b[i] = static_cast<uint8_t>(i * 37);
  }
  writer.AddOwnedSection(store::SectionId::kEntityCatalog,
                         std::move(payload_b));
  const std::string path = TempPath(name);
  EXPECT_TRUE(writer.WriteToFile(path).ok());
  return path;
}

// --- Container round trip ----------------------------------------------------

TEST(SnapshotContainerTest, WriteReadRoundTrip) {
  const std::string path = WriteSampleSnapshot("container_roundtrip.snap");
  auto opened = store::SnapshotReader::Open(path);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  const auto reader = std::move(opened).value();

  EXPECT_EQ(reader->version(), store::kFormatVersion);
  ASSERT_EQ(reader->sections().size(), 2u);

  const store::Section* a = reader->Find(store::SectionId::kRowToEntity);
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->size, 7u);
  EXPECT_EQ(a->data[0], 1);
  EXPECT_EQ(a->data[6], 7);

  const store::Section* b = reader->Find(store::SectionId::kEntityCatalog);
  ASSERT_NE(b, nullptr);
  ASSERT_EQ(b->size, 1000u);
  for (size_t i = 0; i < 1000; ++i) {
    ASSERT_EQ(b->data[i], static_cast<uint8_t>(i * 37));
  }

  // Payloads start on kSectionAlign file offsets (zero-copy SIMD loads).
  for (const store::Section& s : reader->sections()) {
    EXPECT_EQ(s.offset % store::kSectionAlign, 0u);
    EXPECT_TRUE(reader->VerifySection(s).ok());
  }

  EXPECT_EQ(reader->Find(store::SectionId::kPqCodes), nullptr);
  EXPECT_FALSE(reader->Require(store::SectionId::kPqCodes).ok());
  EXPECT_FALSE(reader->Require(store::SectionId::kRowToEntity, 9999).ok());
}

TEST(SnapshotContainerTest, UnknownSectionIdsAreRetainedNotFatal) {
  // Forward compatibility: a reader must tolerate ids it does not know.
  std::vector<uint8_t> payload = {42};
  store::SnapshotWriter writer;
  writer.AddSection(static_cast<store::SectionId>(999), payload.data(),
                    payload.size());
  const std::string path = TempPath("unknown_section.snap");
  ASSERT_TRUE(writer.WriteToFile(path).ok());

  auto opened = store::SnapshotReader::Open(path);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_EQ(opened.value()->sections().size(), 1u);
  EXPECT_EQ(opened.value()->Find(store::SectionId::kIndexMeta), nullptr);
}

// --- Corruption robustness ---------------------------------------------------

TEST(SnapshotCorruptionTest, MissingFileIsAnError) {
  EXPECT_FALSE(store::SnapshotReader::Open(TempPath("nope.snap")).ok());
}

TEST(SnapshotCorruptionTest, TruncationAtEveryBoundaryIsAnError) {
  const std::string path = WriteSampleSnapshot("truncate_src.snap");
  const std::vector<uint8_t> bytes = ReadFileBytes(path);
  // Below the header, mid-table, mid-payload and one-byte-short: every
  // prefix must be rejected via Status (declared size != actual).
  const size_t cuts[] = {0, 1, 17, sizeof(store::FileHeader),
                         sizeof(store::FileHeader) + 16, bytes.size() / 2,
                         bytes.size() - 1};
  for (const size_t cut : cuts) {
    ASSERT_LT(cut, bytes.size());
    const std::string trunc = TempPath("truncated.snap");
    WriteFileBytes(trunc, std::vector<uint8_t>(bytes.begin(),
                                               bytes.begin() + cut));
    auto opened = store::SnapshotReader::Open(trunc);
    EXPECT_FALSE(opened.ok()) << "cut at " << cut;
  }
}

TEST(SnapshotCorruptionTest, TrailingGarbageIsAnError) {
  const std::string path = WriteSampleSnapshot("trailing_src.snap");
  std::vector<uint8_t> bytes = ReadFileBytes(path);
  bytes.push_back(0xAB);
  WriteFileBytes(path, bytes);
  EXPECT_FALSE(store::SnapshotReader::Open(path).ok());
}

TEST(SnapshotCorruptionTest, BadMagicIsAnError) {
  const std::string path = WriteSampleSnapshot("magic_src.snap");
  std::vector<uint8_t> bytes = ReadFileBytes(path);
  bytes[0] ^= 0xFF;
  WriteFileBytes(path, bytes);
  auto opened = store::SnapshotReader::Open(path);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kIoError);
}

TEST(SnapshotCorruptionTest, UnsupportedVersionIsAnError) {
  const std::string path = WriteSampleSnapshot("version_src.snap");
  std::vector<uint8_t> bytes = ReadFileBytes(path);
  bytes[8] = 0x7F;  // FileHeader::version low byte.
  WriteFileBytes(path, bytes);
  EXPECT_FALSE(store::SnapshotReader::Open(path).ok());
}

TEST(SnapshotCorruptionTest, BitFlippedTableIsAnError) {
  const std::string path = WriteSampleSnapshot("table_src.snap");
  std::vector<uint8_t> bytes = ReadFileBytes(path);
  bytes[sizeof(store::FileHeader) + 3] ^= 0x01;  // Inside the table.
  WriteFileBytes(path, bytes);
  EXPECT_FALSE(store::SnapshotReader::Open(path).ok());
}

TEST(SnapshotCorruptionTest, BitFlippedPayloadIsCaughtByChecksums) {
  const std::string path = WriteSampleSnapshot("payload_src.snap");
  std::vector<uint8_t> bytes = ReadFileBytes(path);
  bytes[bytes.size() - 100] ^= 0x10;  // Inside the last payload.
  WriteFileBytes(path, bytes);

  EXPECT_FALSE(store::SnapshotReader::Open(path).ok());

  // Without up-front verification the open succeeds (diagnostics mode)
  // but VerifySection pins down the damaged section.
  store::SnapshotReader::Options lax;
  lax.verify_checksums = false;
  auto opened = store::SnapshotReader::Open(path, lax);
  ASSERT_TRUE(opened.ok());
  const store::Section* damaged =
      opened.value()->Find(store::SectionId::kEntityCatalog);
  ASSERT_NE(damaged, nullptr);
  EXPECT_FALSE(opened.value()->VerifySection(*damaged).ok());
  const store::Section* intact =
      opened.value()->Find(store::SectionId::kRowToEntity);
  ASSERT_NE(intact, nullptr);
  EXPECT_TRUE(opened.value()->VerifySection(*intact).ok());
}

TEST(SnapshotCorruptionTest, RandomBytesNeverCrash) {
  // Fuzz-ish: structurally random garbage of assorted sizes must always
  // come back as a Status (run under ASan in CI).
  Rng rng(99);
  for (const size_t size : {0u, 3u, 63u, 64u, 200u, 4096u}) {
    std::vector<uint8_t> bytes(size);
    for (auto& b : bytes) b = static_cast<uint8_t>(rng.Uniform(256));
    const std::string path = TempPath("random.snap");
    WriteFileBytes(path, bytes);
    EXPECT_FALSE(store::SnapshotReader::Open(path).ok());
  }
}

TEST(SnapshotCorruptionTest, CorruptIndexMetaIsAnError) {
  store::SnapshotWriter writer;
  store::IndexMeta meta;
  meta.backend = 77;  // No such BackendKind.
  meta.dim = 8;
  writer.AddSection(store::SectionId::kIndexMeta, &meta, sizeof(meta));
  const std::string path = TempPath("badmeta.snap");
  ASSERT_TRUE(writer.WriteToFile(path).ok());
  auto opened = store::SnapshotReader::Open(path);
  ASSERT_TRUE(opened.ok());
  EXPECT_FALSE(store::ReadIndexMeta(*opened.value()).ok());
  EXPECT_FALSE(core::EntityIndex::FromSnapshot(opened.value()).ok());
}

// --- ANN backend round trips (zero-copy equivalence) -------------------------

std::vector<float> RandomVectors(int64_t n, int64_t dim, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> data(n * dim);
  for (auto& v : data) v = rng.UniformFloat(-1.0f, 1.0f);
  return data;
}

/// Writes `append`'s sections plus the meta section, then reopens.
template <typename AppendFn>
std::shared_ptr<const store::SnapshotReader> RoundTrip(
    const std::string& name, AppendFn append) {
  store::SnapshotWriter writer;
  store::IndexMeta meta;
  append(&meta, &writer);
  writer.AddSection(store::SectionId::kIndexMeta, &meta, sizeof(meta));
  const std::string path = TempPath(name);
  EXPECT_TRUE(writer.WriteToFile(path).ok());
  auto opened = store::SnapshotReader::Open(path);
  EXPECT_TRUE(opened.ok()) << opened.status().ToString();
  return std::move(opened).value();
}

void ExpectSameNeighbors(const std::vector<ann::Neighbor>& got,
                         const std::vector<ann::Neighbor>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].id, want[i].id) << "rank " << i;
    EXPECT_EQ(got[i].dist, want[i].dist) << "rank " << i;
  }
}

// Cross-kernel comparisons follow the kernels_test convention: ids exact,
// distances within relative tolerance (FMA vs scalar differ in low bits).
void ExpectNearNeighbors(const std::vector<ann::Neighbor>& got,
                         const std::vector<ann::Neighbor>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].id, want[i].id) << "rank " << i;
    const float tol = 1e-4f * std::max(1.0f, std::fabs(want[i].dist));
    EXPECT_NEAR(got[i].dist, want[i].dist, tol) << "rank " << i;
  }
}

TEST(IndexIoTest, FlatRoundTripIsBitIdentical) {
  constexpr int64_t kDim = 16, kN = 400;
  const auto data = RandomVectors(kN, kDim, 1);
  ann::FlatIndex index(kDim);
  index.Add(data.data(), kN);

  auto reader = RoundTrip("flat.snap", [&](store::IndexMeta* meta,
                                           store::SnapshotWriter* writer) {
    store::AppendFlat(index, meta, writer);
  });
  auto meta = store::ReadIndexMeta(*reader);
  ASSERT_TRUE(meta.ok());
  auto loaded = store::LoadFlat(meta.value(), *reader);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded.value().borrowed());
  EXPECT_EQ(loaded.value().size(), kN);

  const auto queries = RandomVectors(8, kDim, 2);
  for (int64_t q = 0; q < 8; ++q) {
    ExpectSameNeighbors(loaded.value().Search(queries.data() + q * kDim, 10),
                        index.Search(queries.data() + q * kDim, 10));
  }
}

TEST(IndexIoTest, PqRoundTripIsBitIdenticalAndZeroCopy) {
  constexpr int64_t kDim = 16, kN = 500;
  const auto data = RandomVectors(kN, kDim, 3);
  ann::PqIndex index(kDim, /*m=*/4);
  Rng rng(4);
  ASSERT_TRUE(index.Train(data.data(), kN, &rng).ok());
  ASSERT_TRUE(index.Add(data.data(), kN).ok());

  auto reader = RoundTrip("pq.snap", [&](store::IndexMeta* meta,
                                         store::SnapshotWriter* writer) {
    store::AppendPq(index, meta, writer);
  });
  auto meta = store::ReadIndexMeta(*reader);
  ASSERT_TRUE(meta.ok());
  auto loaded = store::LoadPq(meta.value(), *reader);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ann::PqIndex& pq = loaded.value();

  // Zero-copy: codes and codebooks must point INTO the mapping.
  EXPECT_TRUE(pq.borrowed());
  const store::Section* codes = reader->Find(store::SectionId::kPqCodes);
  ASSERT_NE(codes, nullptr);
  EXPECT_EQ(pq.codes_data(), codes->data);
  const store::Section* books = reader->Find(store::SectionId::kPqCodebooks);
  ASSERT_NE(books, nullptr);
  EXPECT_EQ(reinterpret_cast<const uint8_t*>(pq.quantizer().codebook_data()),
            books->data);

  const auto queries = RandomVectors(8, kDim, 5);
  for (int64_t q = 0; q < 8; ++q) {
    ExpectSameNeighbors(pq.Search(queries.data() + q * kDim, 10),
                        index.Search(queries.data() + q * kDim, 10));
  }
  auto batch_got = pq.BatchSearch(queries.data(), 8, 10);
  auto batch_want = index.BatchSearch(queries.data(), 8, 10);
  for (size_t q = 0; q < 8; ++q) {
    ExpectSameNeighbors(batch_got[q], batch_want[q]);
  }

  // A borrowed index is immutable: Add fails as a Status, not a crash.
  EXPECT_EQ(pq.Add(data.data(), 1).code(), StatusCode::kFailedPrecondition);
}

TEST(IndexIoTest, PqScanOverMappedCodesMatchesScalar) {
  if (k::Table(k::Arch::kScalar) == nullptr) {
    GTEST_SKIP() << "no scalar table";
  }
  constexpr int64_t kDim = 32, kN = 600;
  const auto data = RandomVectors(kN, kDim, 6);
  ann::PqIndex index(kDim, /*m=*/8);
  Rng rng(7);
  ASSERT_TRUE(index.Train(data.data(), kN, &rng).ok());
  ASSERT_TRUE(index.Add(data.data(), kN).ok());

  auto reader = RoundTrip("pq_simd.snap", [&](store::IndexMeta* meta,
                                              store::SnapshotWriter* writer) {
    store::AppendPq(index, meta, writer);
  });
  auto meta = store::ReadIndexMeta(*reader);
  ASSERT_TRUE(meta.ok());
  auto loaded = store::LoadPq(meta.value(), *reader);
  ASSERT_TRUE(loaded.ok());

  // The dispatched (possibly SIMD) kernels scan the mmap'd code blocks in
  // place; results must equal a forced-scalar scan of the same mapping.
  const k::Arch original = k::Dispatch().arch;
  const auto queries = RandomVectors(4, kDim, 8);
  std::vector<std::vector<ann::Neighbor>> dispatched;
  for (int64_t q = 0; q < 4; ++q) {
    dispatched.push_back(loaded.value().Search(queries.data() + q * kDim, 10));
  }
  ASSERT_TRUE(k::ForceArch(k::Arch::kScalar));
  for (int64_t q = 0; q < 4; ++q) {
    ExpectNearNeighbors(loaded.value().Search(queries.data() + q * kDim, 10),
                        dispatched[q]);
  }
  k::ForceArch(original);
}

void TestIvfRoundTrip(ann::IvfIndex::Storage storage, const char* name) {
  constexpr int64_t kDim = 16, kN = 700;
  const auto data = RandomVectors(kN, kDim, 9);
  ann::IvfIndex::Options options;
  options.num_lists = 12;
  options.nprobe = 4;
  options.storage = storage;
  options.pq_m = 4;
  ann::IvfIndex index(kDim, options);
  ASSERT_TRUE(index.Train(data.data(), kN).ok());
  ASSERT_TRUE(index.Add(data.data(), kN).ok());

  auto reader = RoundTrip(name, [&](store::IndexMeta* meta,
                                    store::SnapshotWriter* writer) {
    store::AppendIvf(index, meta, writer);
  });
  auto meta = store::ReadIndexMeta(*reader);
  ASSERT_TRUE(meta.ok());
  auto loaded = store::LoadIvf(meta.value(), *reader);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded.value().borrowed());
  EXPECT_EQ(loaded.value().size(), kN);

  const auto queries = RandomVectors(8, kDim, 10);
  for (int64_t q = 0; q < 8; ++q) {
    ExpectSameNeighbors(loaded.value().Search(queries.data() + q * kDim, 10),
                        index.Search(queries.data() + q * kDim, 10));
  }
  EXPECT_EQ(loaded.value().Add(data.data(), 1).code(),
            StatusCode::kFailedPrecondition);
}

TEST(IndexIoTest, Sq8RoundTripIsBitIdenticalAndZeroCopy) {
  constexpr int64_t kDim = 16, kN = 500;
  const auto data = RandomVectors(kN, kDim, 11);
  ann::Sq8Index index(kDim);
  ASSERT_TRUE(index.Train(data.data(), kN).ok());
  ASSERT_TRUE(index.Add(data.data(), kN).ok());

  auto reader = RoundTrip("sq8.snap", [&](store::IndexMeta* meta,
                                          store::SnapshotWriter* writer) {
    store::AppendSq8(index, meta, writer);
  });
  auto meta = store::ReadIndexMeta(*reader);
  ASSERT_TRUE(meta.ok());
  EXPECT_EQ(meta.value().backend,
            static_cast<uint32_t>(store::BackendKind::kSq8));
  auto loaded = store::LoadSq8(meta.value(), *reader);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ann::Sq8Index& sq8 = loaded.value();

  // Zero-copy: params, codes and row norms must point INTO the mapping.
  EXPECT_TRUE(sq8.borrowed());
  EXPECT_EQ(sq8.size(), kN);
  const store::Section* codes = reader->Find(store::SectionId::kSq8Codes);
  ASSERT_NE(codes, nullptr);
  EXPECT_EQ(sq8.codes_data(), codes->data);
  const store::Section* params = reader->Find(store::SectionId::kSq8Params);
  ASSERT_NE(params, nullptr);
  EXPECT_EQ(reinterpret_cast<const uint8_t*>(sq8.params_data()),
            params->data);
  const store::Section* norms =
      reader->Find(store::SectionId::kSq8RowNorms);
  ASSERT_NE(norms, nullptr);
  EXPECT_EQ(reinterpret_cast<const uint8_t*>(sq8.row_norms_data()),
            norms->data);

  const auto queries = RandomVectors(8, kDim, 12);
  for (int64_t q = 0; q < 8; ++q) {
    ExpectSameNeighbors(sq8.Search(queries.data() + q * kDim, 10),
                        index.Search(queries.data() + q * kDim, 10));
  }
  auto batch_got = sq8.BatchSearch(queries.data(), 8, 10);
  auto batch_want = index.BatchSearch(queries.data(), 8, 10);
  for (size_t q = 0; q < 8; ++q) {
    ExpectSameNeighbors(batch_got[q], batch_want[q]);
  }

  // A borrowed index is immutable: Add/Train fail as Status, not a crash.
  EXPECT_EQ(sq8.Add(data.data(), 1).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(sq8.Train(data.data(), 1).code(),
            StatusCode::kFailedPrecondition);
}

TEST(IndexIoTest, Sq8ScanOverMappedCodesMatchesScalar) {
  if (k::Table(k::Arch::kScalar) == nullptr) {
    GTEST_SKIP() << "no scalar table";
  }
  constexpr int64_t kDim = 33, kN = 600;  // odd dim: scalar-tail coverage
  const auto data = RandomVectors(kN, kDim, 13);
  ann::Sq8Index index(kDim);
  ASSERT_TRUE(index.Train(data.data(), kN).ok());
  ASSERT_TRUE(index.Add(data.data(), kN).ok());

  auto reader = RoundTrip("sq8_simd.snap", [&](store::IndexMeta* meta,
                                               store::SnapshotWriter* writer) {
    store::AppendSq8(index, meta, writer);
  });
  auto meta = store::ReadIndexMeta(*reader);
  ASSERT_TRUE(meta.ok());
  auto loaded = store::LoadSq8(meta.value(), *reader);
  ASSERT_TRUE(loaded.ok());

  // The dispatched (possibly SIMD) kernels scan the mmap'd codes in
  // place; results must equal a forced-scalar scan of the same mapping.
  const k::Arch original = k::Dispatch().arch;
  const auto queries = RandomVectors(4, kDim, 14);
  std::vector<std::vector<ann::Neighbor>> dispatched;
  for (int64_t q = 0; q < 4; ++q) {
    dispatched.push_back(loaded.value().Search(queries.data() + q * kDim, 10));
  }
  ASSERT_TRUE(k::ForceArch(k::Arch::kScalar));
  for (int64_t q = 0; q < 4; ++q) {
    ExpectNearNeighbors(loaded.value().Search(queries.data() + q * kDim, 10),
                        dispatched[q]);
  }
  k::ForceArch(original);
}

TEST(IndexIoTest, IvfFlatRoundTripIsBitIdentical) {
  TestIvfRoundTrip(ann::IvfIndex::Storage::kFlat, "ivf_flat.snap");
}

TEST(IndexIoTest, IvfPqRoundTripIsBitIdentical) {
  TestIvfRoundTrip(ann::IvfIndex::Storage::kPq, "ivf_pq.snap");
}

ann::HnswIndex BuildSmallHnsw(const std::vector<float>& data, int64_t dim,
                              int64_t n) {
  ann::HnswIndex::Options options;
  options.m = 8;
  options.ef_construction = 60;
  options.ef_search = 40;
  options.seed = 4242;
  ann::HnswIndex index(dim, options);
  EXPECT_TRUE(index.Add(data.data(), n).ok());
  return index;
}

TEST(IndexIoTest, HnswRoundTripIsBitIdenticalAndZeroCopy) {
  constexpr int64_t kDim = 16, kN = 500;
  const auto data = RandomVectors(kN, kDim, 15);
  ann::HnswIndex index = BuildSmallHnsw(data, kDim, kN);

  auto reader = RoundTrip("hnsw.snap", [&](store::IndexMeta* meta,
                                           store::SnapshotWriter* writer) {
    store::AppendHnsw(index, meta, writer);
  });
  auto meta = store::ReadIndexMeta(*reader);
  ASSERT_TRUE(meta.ok());
  EXPECT_EQ(meta.value().backend,
            static_cast<uint32_t>(store::BackendKind::kHnsw));
  auto loaded = store::LoadHnsw(meta.value(), *reader);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ann::HnswIndex& hnsw = loaded.value();

  // Zero-copy: the vector payload and per-node graph metadata must point
  // INTO the mapping (no per-node allocations on the borrowed path).
  EXPECT_TRUE(hnsw.borrowed());
  EXPECT_EQ(hnsw.size(), kN);
  EXPECT_EQ(hnsw.entry_point(), index.entry_point());
  EXPECT_EQ(hnsw.max_level(), index.max_level());
  const store::Section* vectors = reader->Find(store::SectionId::kFlatVectors);
  ASSERT_NE(vectors, nullptr);
  EXPECT_EQ(reinterpret_cast<const uint8_t*>(hnsw.vectors_data()),
            vectors->data);
  const store::Section* levels = reader->Find(store::SectionId::kHnswLevels);
  ASSERT_NE(levels, nullptr);
  EXPECT_EQ(reinterpret_cast<const uint8_t*>(hnsw.levels_data()),
            levels->data);
  const store::Section* starts =
      reader->Find(store::SectionId::kHnswListStarts);
  ASSERT_NE(starts, nullptr);
  EXPECT_EQ(reinterpret_cast<const uint8_t*>(hnsw.list_starts_data()),
            starts->data);

  // The borrowed graph must reproduce the owned index's searches exactly
  // (same adjacency, same kernels, same tie-breaks).
  const auto queries = RandomVectors(8, kDim, 16);
  for (int64_t q = 0; q < 8; ++q) {
    ExpectSameNeighbors(hnsw.Search(queries.data() + q * kDim, 10),
                        index.Search(queries.data() + q * kDim, 10));
  }
  auto batch_got = hnsw.BatchSearch(queries.data(), 8, 10);
  auto batch_want = index.BatchSearch(queries.data(), 8, 10);
  for (size_t q = 0; q < 8; ++q) {
    ExpectSameNeighbors(batch_got[q], batch_want[q]);
  }

  // A borrowed graph is immutable: Add fails as Status, not a crash.
  EXPECT_EQ(hnsw.Add(data.data(), 1).code(), StatusCode::kFailedPrecondition);
}

TEST(IndexIoTest, HnswCorruptedSnapshotSurfacesAsStatus) {
  constexpr int64_t kDim = 8, kN = 120;
  const auto data = RandomVectors(kN, kDim, 17);
  ann::HnswIndex index = BuildSmallHnsw(data, kDim, kN);

  store::SnapshotWriter writer;
  store::IndexMeta meta;
  store::AppendHnsw(index, &meta, &writer);
  writer.AddSection(store::SectionId::kIndexMeta, &meta, sizeof(meta));
  const std::string path = TempPath("hnsw_corrupt_src.snap");
  ASSERT_TRUE(writer.WriteToFile(path).ok());
  const std::vector<uint8_t> bytes = ReadFileBytes(path);

  // Truncation anywhere in the file (graph payloads included) is a Status.
  for (const size_t cut : {bytes.size() / 2, bytes.size() - 1}) {
    const std::string trunc = TempPath("hnsw_truncated.snap");
    WriteFileBytes(trunc, std::vector<uint8_t>(bytes.begin(),
                                               bytes.begin() + cut));
    EXPECT_FALSE(store::SnapshotReader::Open(trunc).ok()) << "cut " << cut;
  }

  // A bit flip in the adjacency payload (the last-written sections hold
  // the CSR offsets/links) is caught by the per-section checksum.
  std::vector<uint8_t> flipped = bytes;
  flipped[flipped.size() - 40] ^= 0x04;
  const std::string flip_path = TempPath("hnsw_bitflip.snap");
  WriteFileBytes(flip_path, flipped);
  EXPECT_FALSE(store::SnapshotReader::Open(flip_path).ok());
}

TEST(IndexIoTest, HnswNonsenseMetaIsRejectedNotTrusted) {
  // CRC-valid but geometrically nonsensical metadata must come back as a
  // Status from the structural validation, never an out-of-bounds read
  // (this suite runs under ASan in CI). Each case writes a well-formed
  // container whose kHnswMeta payload lies about the graph.
  store::HnswMeta bad[6];
  bad[0].m = 1;                    // Degenerate graph degree.
  bad[1].m = 8;                    // Negative link count.
  bad[1].ef_construction = 60;
  bad[1].ef_search = 40;
  bad[1].total_links = -5;
  bad[2].m = 8;                    // ef_construction must be positive.
  bad[2].ef_construction = 0;
  bad[2].ef_search = 40;
  bad[3].m = 8;                    // Fewer adjacency lists than nodes.
  bad[3].ef_construction = 60;
  bad[3].ef_search = 40;
  bad[3].num_lists = 3;
  bad[4].m = 8;                    // max_level past the int32 cast would
  bad[4].ef_construction = 60;     // silently fold to 3; must be rejected
  bad[4].ef_search = 40;           // as corrupt instead.
  bad[4].num_lists = 10;
  bad[4].max_level = (int64_t{1} << 32) + 3;
  bad[5].m = 8;                    // Entry point below the -1 sentinel.
  bad[5].ef_construction = 60;
  bad[5].ef_search = 40;
  bad[5].num_lists = 10;
  bad[5].entry_point = -7;

  for (size_t i = 0; i < 6; ++i) {
    store::SnapshotWriter writer;
    store::IndexMeta meta;
    meta.backend = static_cast<uint32_t>(store::BackendKind::kHnsw);
    meta.dim = 8;
    meta.count = 10;
    writer.AddSection(store::SectionId::kIndexMeta, &meta, sizeof(meta));
    writer.AddSection(store::SectionId::kHnswMeta, &bad[i], sizeof(bad[i]));
    const std::string path = TempPath("hnsw_badmeta.snap");
    ASSERT_TRUE(writer.WriteToFile(path).ok());
    auto opened = store::SnapshotReader::Open(path);
    ASSERT_TRUE(opened.ok());
    auto index_meta = store::ReadIndexMeta(*opened.value());
    ASSERT_TRUE(index_meta.ok());
    auto loaded = store::LoadHnsw(index_meta.value(), *opened.value());
    EXPECT_FALSE(loaded.ok()) << "bad case " << i;
  }
}

TEST(IndexIoTest, HnswBorrowedGeometryIsValidatedUpFront) {
  // FromBorrowed must reject out-of-range entry points and corrupt CSR
  // geometry before any search can chase a wild pointer.
  constexpr int64_t kDim = 8, kN = 60;
  const auto data = RandomVectors(kN, kDim, 18);
  ann::HnswIndex index = BuildSmallHnsw(data, kDim, kN);
  std::vector<uint64_t> offsets;
  std::vector<int32_t> links;
  index.ExportCsr(&offsets, &links);
  ann::HnswIndex::Options options;
  options.m = 8;

  auto borrow = [&](int64_t entry_point, const std::vector<uint64_t>& offs) {
    return ann::HnswIndex::FromBorrowed(
        kDim, options, index.vectors_data(), index.levels_data(),
        index.list_starts_data(), offs.data(), links.data(), kN, entry_point,
        index.max_level(), index.num_lists(),
        static_cast<int64_t>(links.size()));
  };

  ASSERT_TRUE(borrow(index.entry_point(), offsets).ok());
  EXPECT_FALSE(borrow(kN + 7, offsets).ok());  // Entry point out of range.

  std::vector<uint64_t> non_monotone = offsets;
  non_monotone[1] = offsets.back();  // Guaranteed > offsets[2] here.
  EXPECT_FALSE(borrow(index.entry_point(), non_monotone).ok());

  std::vector<uint64_t> overrun = offsets;
  overrun.back() += 1;  // Points one past the links payload.
  EXPECT_FALSE(borrow(index.entry_point(), overrun).ok());

  // A link id outside [0, count) would be an OOB visited-stamp write and
  // vector read in SearchLayer; validation must catch it up front.
  std::vector<int32_t> wild_links = links;
  wild_links[wild_links.size() / 2] = static_cast<int32_t>(kN + 3);
  EXPECT_FALSE(ann::HnswIndex::FromBorrowed(
                   kDim, options, index.vectors_data(), index.levels_data(),
                   index.list_starts_data(), offsets.data(),
                   wild_links.data(), kN, index.entry_point(),
                   index.max_level(), index.num_lists(),
                   static_cast<int64_t>(links.size()))
                   .ok());

  // Borrowing with a smaller m than the build leaves lists longer than the
  // 2m scratch the search gathers into — must be rejected, not overflowed.
  ann::HnswIndex::Options narrow = options;
  narrow.m = 2;
  EXPECT_FALSE(ann::HnswIndex::FromBorrowed(
                   kDim, narrow, index.vectors_data(), index.levels_data(),
                   index.list_starts_data(), offsets.data(), links.data(),
                   kN, index.entry_point(), index.max_level(),
                   index.num_lists(), static_cast<int64_t>(links.size()))
                   .ok());

  // An entry point whose own level is below max_level would walk list
  // indices past its lists during descent. Any level-0 node demonstrates
  // it whenever the graph has upper layers.
  if (index.max_level() > 0) {
    int64_t low_node = -1;
    for (int64_t i = 0; i < kN; ++i) {
      if (index.levels_data()[i] == 0) {
        low_node = i;
        break;
      }
    }
    ASSERT_GE(low_node, 0);
    EXPECT_FALSE(borrow(low_node, offsets).ok());
  }
}

// --- EmbLookup / serve wiring ------------------------------------------------

const kg::KnowledgeGraph& SmallKg() {
  // Destructible statics (not the leaky-singleton idiom of core_test):
  // this suite runs under ASan/LSan in CI.
  static const kg::KnowledgeGraph graph = [] {
    kg::SyntheticKgOptions options;
    options.num_entities = 300;
    options.seed = 21;
    return kg::GenerateSyntheticKg(options);
  }();
  return graph;
}

core::EmbLookupOptions FastOptions() {
  core::EmbLookupOptions options;
  // Syntactic-only keeps the tests fast and makes LoadSnapshot exact (the
  // fastText branch is not snapshotted).
  options.encoder.use_semantic_branch = false;
  options.miner.triplets_per_entity = 6;
  options.trainer.epochs = 4;
  return options;
}

core::EmbLookup* TrainedModel() {
  static const std::unique_ptr<core::EmbLookup> model = [] {
    core::EmbLookupOptions options = FastOptions();
    options.index.kind = core::IndexKind::kPq;
    auto built = core::EmbLookup::TrainFromKg(SmallKg(), options);
    EXPECT_TRUE(built.ok()) << built.status().ToString();
    return std::move(built).value();
  }();
  return model.get();
}

std::vector<std::vector<core::LookupResult>> SampleLookups(
    const core::EmbLookup& el) {
  std::vector<std::vector<core::LookupResult>> out;
  for (kg::EntityId e = 0; e < SmallKg().num_entities(); e += 17) {
    out.push_back(el.Lookup(SmallKg().entity(e).label, 5));
  }
  return out;
}

void ExpectSameLookups(
    const std::vector<std::vector<core::LookupResult>>& got,
    const std::vector<std::vector<core::LookupResult>>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i].size(), want[i].size()) << "query " << i;
    for (size_t j = 0; j < got[i].size(); ++j) {
      EXPECT_EQ(got[i][j].entity, want[i][j].entity);
      EXPECT_EQ(got[i][j].dist, want[i][j].dist);
    }
  }
}

TEST(EmbLookupSnapshotTest, SaveThenLoadIndexSnapshotIsIdentical) {
  core::EmbLookup* el = TrainedModel();
  const auto before = SampleLookups(*el);
  const std::string path = TempPath("emblookup.snap");
  ASSERT_TRUE(el->SaveSnapshot(path).ok());

  // Hot-swap the serving index for the mmap-loaded copy; results must be
  // bit-identical (same codebooks, same codes, same tie-breaking).
  ASSERT_TRUE(el->LoadIndexSnapshot(path).ok());
  EXPECT_EQ(el->index().kind(), core::IndexKind::kPq);
  ExpectSameLookups(SampleLookups(*el), before);
}

TEST(EmbLookupSnapshotTest, StaticLoadSnapshotRestoresEncoderAndIndex) {
  core::EmbLookup* el = TrainedModel();
  const std::string path = TempPath("emblookup_static.snap");
  ASSERT_TRUE(el->SaveSnapshot(path).ok());

  auto restored = core::EmbLookup::LoadSnapshot(SmallKg(), FastOptions(),
                                                path);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ExpectSameLookups(SampleLookups(*restored.value()), SampleLookups(*el));
}

TEST(EmbLookupSnapshotTest, LoadSnapshotRejectsMismatchedGraph) {
  core::EmbLookup* el = TrainedModel();
  const std::string path = TempPath("emblookup_mismatch.snap");
  ASSERT_TRUE(el->SaveSnapshot(path).ok());

  kg::SyntheticKgOptions options;
  options.num_entities = 50;
  const kg::KnowledgeGraph other = kg::GenerateSyntheticKg(options);
  auto restored = core::EmbLookup::LoadSnapshot(other, FastOptions(), path);
  ASSERT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kInvalidArgument);
}

TEST(EmbLookupSnapshotTest, EntityCatalogMatchesGraph) {
  core::EmbLookup* el = TrainedModel();
  const std::string path = TempPath("emblookup_catalog.snap");
  ASSERT_TRUE(el->SaveSnapshot(path).ok());

  auto opened = store::SnapshotReader::Open(path);
  ASSERT_TRUE(opened.ok());
  auto catalog = opened.value()->Require(store::SectionId::kEntityCatalog);
  ASSERT_TRUE(catalog.ok());

  const uint8_t* p = catalog.value().data;
  uint64_t count = 0;
  std::memcpy(&count, p, sizeof(count));
  ASSERT_EQ(count, static_cast<uint64_t>(SmallKg().num_entities()));
  const uint64_t* offsets = reinterpret_cast<const uint64_t*>(p + 8);
  const char* blob = reinterpret_cast<const char*>(p + 8 + (2 * count + 1) * 8);
  for (uint64_t e = 0; e < count; ++e) {
    const kg::Entity& entity = SmallKg().entity(static_cast<kg::EntityId>(e));
    EXPECT_EQ(std::string(blob + offsets[2 * e],
                          blob + offsets[2 * e + 1]),
              entity.qid);
    EXPECT_EQ(std::string(blob + offsets[2 * e + 1],
                          blob + offsets[2 * e + 2]),
              entity.label);
  }
}

TEST(LookupServerSnapshotTest, LoadSnapshotHotSwapsWithoutDowntime) {
  core::EmbLookup* el = TrainedModel();
  const std::string path = TempPath("server.snap");
  ASSERT_TRUE(el->SaveSnapshot(path).ok());

  serve::ServerOptions options;
  options.enable_cache = true;
  serve::LookupServer server(el, options);
  const std::string query = SmallKg().entity(3).label;
  auto before = server.LookupSync(query, 5);
  ASSERT_TRUE(before.ok());

  ASSERT_TRUE(server.LoadSnapshot(path).ok());
  EXPECT_EQ(server.Metrics().index_swaps, 1u);

  auto after = server.LookupSync(query, 5);
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after.value().from_cache);  // The swap cleared the cache.
  EXPECT_EQ(after.value().ids, before.value().ids);
  server.Shutdown();
}

TEST(LookupServerSnapshotTest, LoadSnapshotWithoutEmbLookupFails) {
  // A server wrapping a bare LookupService (no EmbLookup handle) must
  // refuse snapshot swaps with a Status, not crash.
  apps::EmbLookupService service(TrainedModel(), /*parallel=*/false);
  serve::LookupServer bare(&service, serve::ServerOptions());
  EXPECT_EQ(bare.LoadSnapshot("ignored.snap").code(),
            StatusCode::kFailedPrecondition);
  bare.Shutdown();
}

}  // namespace
}  // namespace emblookup
