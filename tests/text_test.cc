#include <string>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "kg/noise.h"
#include "text/alphabet.h"
#include "text/bm25.h"
#include "text/edit_distance.h"
#include "text/exact_index.h"
#include "text/fuzzy.h"
#include "text/qgram.h"

namespace emblookup::text {
namespace {

TEST(AlphabetTest, DefaultCoversLettersDigits) {
  Alphabet a;
  EXPECT_LT(a.Pos('a'), a.size() - 1);
  EXPECT_LT(a.Pos('9'), a.size() - 1);
  EXPECT_LT(a.Pos(' '), a.size() - 1);
  EXPECT_EQ(a.Pos('a'), a.Pos('A'));  // Case-insensitive.
}

TEST(AlphabetTest, UnknownMapsToLastSlot) {
  Alphabet a;
  EXPECT_EQ(a.Pos('\x7f'), a.size() - 1);
  EXPECT_EQ(a.Pos('%'), a.size() - 1);
}

TEST(OneHotTest, MatchesPaperExample) {
  // §III-B example: A={a..e}, L=4, "cad" -> columns c,a,d,0.
  Alphabet a("abcde");
  OneHotEncoder enc(&a, 4);
  tensor::Tensor x = enc.Encode("cad");
  ASSERT_EQ(x.shape(), (tensor::Shape{1, 6, 4}));  // 5 chars + unknown row.
  auto at = [&](int64_t row, int64_t col) { return x.data()[row * 4 + col]; };
  EXPECT_EQ(at(2, 0), 1.0f);  // 'c' at position 0.
  EXPECT_EQ(at(0, 1), 1.0f);  // 'a' at position 1.
  EXPECT_EQ(at(3, 2), 1.0f);  // 'd' at position 2.
  float col3 = 0;
  for (int64_t r = 0; r < 6; ++r) col3 += at(r, 3);
  EXPECT_EQ(col3, 0.0f);  // Padding column all zero.
}

TEST(OneHotTest, TruncatesLongMentions) {
  Alphabet a;
  OneHotEncoder enc(&a, 4);
  tensor::Tensor x = enc.Encode("abcdefgh");
  float total = 0;
  for (int64_t i = 0; i < x.size(); ++i) total += x.data()[i];
  EXPECT_EQ(total, 4.0f);  // Only 4 positions encoded.
}

TEST(OneHotTest, BatchStacksMentions) {
  Alphabet a;
  OneHotEncoder enc(&a, 8);
  tensor::Tensor x = enc.EncodeBatch({"ab", "c"});
  EXPECT_EQ(x.dim(0), 2);
}

TEST(OneHotTest, BatchIndicesMatchChannelsLastDense) {
  // EncodeBatchIndices is the lossless sparse form of
  // EncodeBatchChannelsLast: position p holds the column of the row's
  // single 1.0, or -1 for an all-zero row.
  Alphabet a;
  OneHotEncoder enc(&a, 6);
  const std::vector<std::string> mentions = {"ab", "", "toolongmention", "x?"};
  for (int64_t pad : {0, 1, 2}) {
    tensor::Tensor dense = enc.EncodeBatchChannelsLast(mentions, pad);
    std::vector<int32_t> idx = enc.EncodeBatchIndices(mentions, pad);
    ASSERT_EQ(static_cast<int64_t>(idx.size()), dense.dim(0) * dense.dim(1));
    const int64_t c = dense.dim(2);
    for (size_t p = 0; p < idx.size(); ++p) {
      const float* row = dense.data() + static_cast<int64_t>(p) * c;
      for (int64_t ci = 0; ci < c; ++ci) {
        EXPECT_EQ(row[ci], ci == idx[p] ? 1.0f : 0.0f)
            << "pad=" << pad << " p=" << p << " ci=" << ci;
      }
    }
  }
}

// --- Edit distance ---------------------------------------------------------

TEST(EditDistanceTest, KnownValues) {
  EXPECT_EQ(Levenshtein("kitten", "sitting"), 3);
  EXPECT_EQ(Levenshtein("", "abc"), 3);
  EXPECT_EQ(Levenshtein("abc", "abc"), 0);
  EXPECT_EQ(Levenshtein("germany", "germoney"), 2);
}

TEST(EditDistanceTest, Symmetry) {
  EXPECT_EQ(Levenshtein("abcdef", "azced"), Levenshtein("azced", "abcdef"));
}

TEST(EditDistanceTest, DamerauCountsTranspositionAsOne) {
  EXPECT_EQ(Levenshtein("ab", "ba"), 2);
  EXPECT_EQ(DamerauLevenshtein("ab", "ba"), 1);
  EXPECT_EQ(DamerauLevenshtein("berlin", "berlni"), 1);
}

TEST(EditDistanceTest, BoundedAgreesWithinBound) {
  Rng rng(3);
  // Property sweep: bounded == exact whenever exact <= bound.
  for (int trial = 0; trial < 200; ++trial) {
    std::string a = "entity lookup benchmark";
    a = kg::RandomTypo(a, &rng, 1 + rng.Uniform(3));
    std::string b = "entity lookup benchmark";
    b = kg::RandomTypo(b, &rng, 1 + rng.Uniform(3));
    const int64_t exact = Levenshtein(a, b);
    for (int64_t bound : {1, 2, 4, 8}) {
      const int64_t bounded = BoundedLevenshtein(a, b, bound);
      if (exact <= bound) {
        EXPECT_EQ(bounded, exact) << a << " vs " << b;
      } else {
        EXPECT_GT(bounded, bound);
      }
    }
  }
}

TEST(EditDistanceTest, BoundedEarlyExitOnLengthGap) {
  EXPECT_EQ(BoundedLevenshtein("ab", "abcdefghij", 3), 4);
}

TEST(EditDistanceTest, RatioRange) {
  EXPECT_DOUBLE_EQ(LevenshteinRatio("abc", "abc"), 100.0);
  EXPECT_DOUBLE_EQ(LevenshteinRatio("", ""), 100.0);
  EXPECT_DOUBLE_EQ(LevenshteinRatio("abc", "xyz"), 0.0);
}

// --- q-grams ---------------------------------------------------------------

TEST(QGramTest, PaddedTrigrams) {
  auto grams = QGrams("abc", 3);
  ASSERT_EQ(grams.size(), 5u);
  EXPECT_EQ(grams.front(), "##a");
  EXPECT_EQ(grams.back(), "c##");
}

TEST(QGramTest, JaccardIdentityAndDisjoint) {
  EXPECT_DOUBLE_EQ(QGramJaccard("berlin", "berlin"), 1.0);
  EXPECT_LT(QGramJaccard("berlin", "xqwzzz"), 0.1);
}

TEST(QGramTest, IndexRanksCloseStringsFirst) {
  QGramIndex index;
  index.Add(1, "berlin");
  index.Add(2, "munich");
  index.Add(3, "bern");
  auto top = index.TopK("berlin", 2);
  ASSERT_GE(top.size(), 1u);
  EXPECT_EQ(top[0].first, 1);
}

TEST(QGramTest, IndexHandlesMissQuery) {
  QGramIndex index;
  index.Add(1, "berlin");
  EXPECT_TRUE(index.TopK("qqqqxxxx", 5).empty());
}

// --- BM25 ------------------------------------------------------------------

TEST(Bm25Test, ExactTitleWinsOverPartial) {
  Bm25Index index;
  index.Add(1, "united states of america");
  index.Add(2, "united kingdom");
  index.Add(3, "germany");
  index.Finalize();
  auto top = index.TopK("united states", 3);
  ASSERT_FALSE(top.empty());
  EXPECT_EQ(top[0].first, 1);
}

TEST(Bm25Test, TrigramFieldCatchesTypos) {
  Bm25Index index;
  index.Add(1, "germany");
  index.Add(2, "france");
  index.Finalize();
  auto top = index.TopK("germny", 2);  // Dropped 'a'.
  ASSERT_FALSE(top.empty());
  EXPECT_EQ(top[0].first, 1);
}

TEST(Bm25Test, RareTermsOutweighCommonOnes) {
  Bm25Index index;
  for (int i = 0; i < 20; ++i) {
    index.Add(i, "common city " + std::to_string(i));
  }
  index.Add(99, "zanzibar island");
  index.Finalize();
  auto top = index.TopK("zanzibar", 1);
  ASSERT_FALSE(top.empty());
  EXPECT_EQ(top[0].first, 99);
}

TEST(Bm25Test, ChecksLifecycle) {
  Bm25Index index;
  index.Add(1, "a");
  EXPECT_FALSE(index.finalized());
  index.Finalize();
  EXPECT_TRUE(index.finalized());
  EXPECT_EQ(index.num_docs(), 1);
}

// --- FuzzyWuzzy scorers ------------------------------------------------------

TEST(FuzzyTest, RatioIsCaseInsensitive) {
  EXPECT_DOUBLE_EQ(Ratio("Berlin", "berlin"), 100.0);
}

TEST(FuzzyTest, TokenSortHandlesReordering) {
  EXPECT_DOUBLE_EQ(TokenSortRatio("gates bill", "bill gates"), 100.0);
  EXPECT_LT(Ratio("gates bill", "bill gates"), 100.0);
}

TEST(FuzzyTest, TokenSetToleratesExtraTokens) {
  EXPECT_GT(TokenSetRatio("barack obama", "president barack obama"), 95.0);
}

TEST(FuzzyTest, PartialRatioFindsSubstring) {
  EXPECT_DOUBLE_EQ(PartialRatio("berlin", "east berlin district"), 100.0);
}

TEST(FuzzyTest, WRatioAtLeastPlainRatio) {
  const char* a = "federal republic of germany";
  const char* b = "germany federal republic";
  EXPECT_GE(WRatio(a, b), Ratio(a, b));
}

// --- ExactIndex --------------------------------------------------------------

TEST(ExactIndexTest, NormalizedMatch) {
  ExactIndex index;
  index.Add(7, "  East   Berlin ");
  EXPECT_EQ(index.Lookup("east berlin").size(), 1u);
  EXPECT_EQ(index.Lookup("east berlin")[0], 7);
  EXPECT_TRUE(index.Lookup("west berlin").empty());
}

TEST(ExactIndexTest, ManyIdsPerKey) {
  ExactIndex index;
  index.Add(1, "berlin");
  index.Add(2, "Berlin");
  EXPECT_EQ(index.Lookup("BERLIN").size(), 2u);
}

}  // namespace
}  // namespace emblookup::text
