#!/usr/bin/env bash
# Continuous-integration driver:
#   1. tier-1 verify — portable (no -march=native) Release build + full
#      ctest suite (ROADMAP.md's gate); the build includes every bench
#      target, so bench-only bit-rot fails here too;
#   2. the same suite under EMBLOOKUP_KERNELS=scalar, pinning the SIMD
#      dispatcher to the portable fallback kernels so that path stays
#      green on hardware where it is never auto-selected;
#   3. ASan pass over the concurrency-heavy suites (common_test +
#      serve_test), which exercise the thread pool and the serving
#      dispatcher/cache/swap paths.
#
# Usage: tools/ci.sh [jobs]    (defaults to nproc)
set -euo pipefail
cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

echo "== tier-1: portable build (tests + benches) + ctest =="
cmake -B build-ci -S . -DEMBLOOKUP_NATIVE_ARCH=OFF
cmake --build build-ci -j "$JOBS"
(cd build-ci && ctest --output-on-failure -j "$JOBS")

echo "== tier-1b: scalar-kernel fallback ctest =="
(cd build-ci && EMBLOOKUP_KERNELS=scalar ctest --output-on-failure -j "$JOBS")

echo "== asan: common_test + serve_test + kernels_test =="
cmake -B build-asan -S . -DEMBLOOKUP_NATIVE_ARCH=OFF \
  -DEMBLOOKUP_SANITIZE=address
cmake --build build-asan -j "$JOBS" --target common_test serve_test \
  kernels_test
./build-asan/tests/common_test
./build-asan/tests/serve_test
./build-asan/tests/kernels_test

echo "CI OK"
