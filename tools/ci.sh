#!/usr/bin/env bash
# Continuous-integration driver:
#   1. tier-1 verify — portable (no -march=native) Release build + full
#      ctest suite (ROADMAP.md's gate); the build includes every bench
#      target, so bench-only bit-rot fails here too;
#   2. the same suite once per kernel tier the host can actually run
#      (EMBLOOKUP_KERNELS=scalar|avx2|avx512|neon, probed through
#      `emblookup_cli kernel-info`): tiers the CPU or build lacks are
#      skipped — not failed — so one CI script serves every machine,
#      and the scalar fallback stays green on hardware where it is
#      never auto-selected;
#   3. ASan pass over the concurrency-heavy suites (common_test +
#      serve_test), the kernel property tests, the index suites
#      (ann_test incl. SQ8 quantization and the HNSW graph
#      recall/determinism/corruption suite, store_test), and
#      update_test (snapshot/WAL corruption handling must fail with
#      Status, never with UB);
#   4. TSan pass over the lock-sensitive suites — serve_test, the
#      update subsystem's mutate-while-lookup stress test, and HNSW
#      search under concurrent lookups (the shared visited-set pool) —
#      pinning the RCU publish / epoch-invalidation paths data-race-free;
#   5. snapshot round trip through the CLI — build-snapshot ->
#      snapshot-info -> serve --snapshot on a tiny synthetic KG for the
#      pq, sq8 and hnsw backends (plus one verified hnsw lookup),
#      proving the on-disk container end to end (DESIGN.md §7);
#   6. loopback remote serving end to end — serve --port on an ephemeral
#      port, remote-bench against it over the binary wire protocol
#      (DESIGN.md §10): --verify-local 1 asserts remote results are
#      bit-identical to in-process Submit, an open-loop run exercises the
#      fixed-rate injector, and SIGINT must drain and exit 0;
#   7. cluster e2e (DESIGN.md §12) — build-shards partitions a synthetic
#      catalog 4 ways (flat index: the quantizer-free kind whose routed
#      merge is exact), four `serve --shard k/4` processes plus a `route`
#      scatter-gather front come up on ephemeral ports, and
#      remote-bench --verify-local 1 asserts the routed top-k is
#      bit-identical to a single-node build; killing one shard must yield
#      an explicitly partial reply (--expect-partial 1), never a silent
#      subset; then a leader with --replication-port and a synthetic
#      mutation storm must bring a `replicate` follower to replication
#      lag 0 (exit 0 from --converge-seq);
#   8. observability gate — metrics-dump on a tiny KG must emit every
#      metric family OBSERVABILITY.md documents, and every family it
#      emits must be documented (the two greps keep docs and exporter in
#      lockstep), plus tools/check_docs.sh (CLI subcommands vs README).
#
# Usage: tools/ci.sh [jobs]    (defaults to nproc)
set -euo pipefail
cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

echo "== tier-1: portable build (tests + benches) + ctest =="
cmake -B build-ci -S . -DEMBLOOKUP_NATIVE_ARCH=OFF
cmake --build build-ci -j "$JOBS"
(cd build-ci && ctest --output-on-failure -j "$JOBS")

echo "== tier-1b: ctest per forced kernel tier (skip-not-fail) =="
# kernel-info reports which ISA tiers this build + CPU can execute; run
# the full suite pinned to each available tier and skip the rest, so the
# same script passes on AVX-512, AVX2-only, and aarch64 hosts alike.
KINFO="$(build-ci/tools/emblookup_cli kernel-info)"
echo "$KINFO"
for tier in scalar avx2 avx512 neon; do
  if echo "$KINFO" | grep -q "^tier $tier: available"; then
    echo "-- ctest under EMBLOOKUP_KERNELS=$tier --"
    (cd build-ci && EMBLOOKUP_KERNELS=$tier ctest --output-on-failure -j "$JOBS")
  else
    echo "-- tier $tier unavailable on this host: skipped --"
  fi
done

echo "== asan: common_test + serve_test + kernels_test + ann_test + store_test + update_test + net_test + cluster_test + core_test(encode path) =="
cmake -B build-asan -S . -DEMBLOOKUP_NATIVE_ARCH=OFF \
  -DEMBLOOKUP_SANITIZE=address
cmake --build build-asan -j "$JOBS" --target common_test serve_test \
  kernels_test ann_test store_test update_test obs_test net_test \
  cluster_test core_test
./build-asan/tests/common_test
./build-asan/tests/serve_test
./build-asan/tests/kernels_test
# Encode path under ASan: the batched GEMM scratch/compaction buffers and
# the encoder cache's entry lifecycle (full core_test trains end-to-end
# models — too slow under sanitizers, so only the encode-path suites run).
./build-asan/tests/core_test \
  --gtest_filter='EncoderTest.*:EncoderCacheTest.*:EncoderCacheConcurrencyTest.*'
# SQ8 train/encode/asymmetric-scan, the PQ/IVF suites, and the HNSW
# graph build/search/borrowed-geometry paths under ASan.
./build-asan/tests/ann_test
./build-asan/tests/store_test
./build-asan/tests/update_test
./build-asan/tests/obs_test
# Wire-decoder fuzz sweeps + malformed-input socket tests under ASan: the
# protocol must reject corrupt frames with Status, never with UB.
./build-asan/tests/net_test
# Scatter-gather router, WAL shipping, and the torn-segment / seq-gap
# replay paths: replication corruption must surface as Status, never UB.
./build-asan/tests/cluster_test

echo "== tsan: serve_test + update concurrency stress + obs spans + net front end + hnsw concurrent search =="
cmake -B build-tsan -S . -DEMBLOOKUP_NATIVE_ARCH=OFF \
  -DEMBLOOKUP_SANITIZE=thread
cmake --build build-tsan -j "$JOBS" --target serve_test update_test obs_test \
  net_test ann_test core_test
./build-tsan/tests/serve_test
./build-tsan/tests/update_test --gtest_filter='ConcurrencyTest.*'
./build-tsan/tests/obs_test
# Concurrent encoder-cache probes/fills/clears across shard mutexes.
./build-tsan/tests/core_test --gtest_filter='EncoderCacheConcurrencyTest.*'
# Parallel HNSW searches share the visited-set pool and the global
# search-effort histograms; both must be race-free.
./build-tsan/tests/ann_test --gtest_filter='HnswIndexTest.*'
# Event loops, completion inbox handoff, and Stop drain under TSan.
./build-tsan/tests/net_test

echo "== snapshot round trip: build-snapshot -> snapshot-info -> serve =="
SNAPDIR="$(mktemp -d)"
trap 'rm -rf "$SNAPDIR"' EXIT
CLI=build-ci/tools/emblookup_cli
"$CLI" generate-kg --entities 200 --seed 7 --out "$SNAPDIR/kg.tsv"
"$CLI" train --kg "$SNAPDIR/kg.tsv" --model "$SNAPDIR/model.bin" \
  --epochs 2 --triplets 4
"$CLI" build-snapshot --kg "$SNAPDIR/kg.tsv" --model "$SNAPDIR/model.bin" \
  --out "$SNAPDIR/snap.bin" --kind pq --epochs 2 --triplets 4
"$CLI" snapshot-info "$SNAPDIR/snap.bin"
"$CLI" serve --kg "$SNAPDIR/kg.tsv" --snapshot "$SNAPDIR/snap.bin" \
  --clients 2 --requests 100 --epochs 2 --triplets 4
# Same round trip for the SQ8 int8 backend: its three sections
# (sq8-params / sq8-codes / sq8-row-norms) must survive the container
# and serve zero-copy off the mapping.
"$CLI" build-snapshot --kg "$SNAPDIR/kg.tsv" --model "$SNAPDIR/model.bin" \
  --out "$SNAPDIR/snap-sq8.bin" --kind sq8 --epochs 2 --triplets 4
"$CLI" snapshot-info "$SNAPDIR/snap-sq8.bin"
"$CLI" serve --kg "$SNAPDIR/kg.tsv" --snapshot "$SNAPDIR/snap-sq8.bin" \
  --clients 2 --requests 100 --epochs 2 --triplets 4
# HNSW round trip: the five graph sections (hnsw-meta / hnsw-levels /
# hnsw-list-starts / hnsw-offsets / hnsw-links) must survive the
# container, snapshot-info must read the graph stats back, and the
# mmap'd graph must serve zero-copy.
"$CLI" build-snapshot --kg "$SNAPDIR/kg.tsv" --model "$SNAPDIR/model.bin" \
  --out "$SNAPDIR/snap-hnsw.bin" --kind hnsw --hnsw-m 8 \
  --hnsw-ef-search 80 --epochs 2 --triplets 4
"$CLI" snapshot-info "$SNAPDIR/snap-hnsw.bin" | tee "$SNAPDIR/hnsw-info.txt"
grep -q "index: hnsw, " "$SNAPDIR/hnsw-info.txt"
grep -q "hnsw: m=8, " "$SNAPDIR/hnsw-info.txt"
"$CLI" serve --kg "$SNAPDIR/kg.tsv" --snapshot "$SNAPDIR/snap-hnsw.bin" \
  --clients 2 --requests 100 --epochs 2 --triplets 4
# One verified lookup through the graph: querying an entity's own label
# must surface that label in the top hits.
LABEL="$(awk -F'\t' '/^#entities/{f=1;next}/^#/{f=0} f{print $2; exit}' \
  "$SNAPDIR/kg.tsv")"
"$CLI" lookup --kg "$SNAPDIR/kg.tsv" --model "$SNAPDIR/model.bin" \
  --kind hnsw --query "$LABEL" --k 3 --epochs 2 --triplets 4 \
  | grep -F "$LABEL"

echo "== e2e loopback: serve --port -> remote-bench over the wire protocol =="
"$CLI" serve --kg "$SNAPDIR/kg.tsv" --model "$SNAPDIR/model.bin" \
  --epochs 2 --triplets 4 --port 0 > "$SNAPDIR/serve.log" 2>&1 &
SERVE_PID=$!
PORT=""
for _ in $(seq 1 100); do
  PORT="$(sed -n 's/^listening on port \([0-9]*\).*/\1/p' "$SNAPDIR/serve.log")"
  [[ -n "$PORT" ]] && break
  sleep 0.1
done
if [[ -z "$PORT" ]]; then
  echo "FAIL: serve --port 0 never reported its port"
  cat "$SNAPDIR/serve.log"
  kill "$SERVE_PID" 2>/dev/null || true
  exit 1
fi
# Closed loop with --verify-local 1: every sampled remote result must be
# bit-identical to an in-process Submit against the same --kg/--model.
"$CLI" remote-bench --kg "$SNAPDIR/kg.tsv" --model "$SNAPDIR/model.bin" \
  --host 127.0.0.1 --port "$PORT" --mode closed --requests 200 \
  --verify-local 1 --epochs 2 --triplets 4
# Open loop: fixed-rate injection with latency measured from the
# scheduled send time (coordinated-omission accounting).
"$CLI" remote-bench --kg "$SNAPDIR/kg.tsv" --host 127.0.0.1 --port "$PORT" \
  --mode open --rate 500 --requests 500 --conns 2 --verify-local 0
# SIGINT must drain in-flight requests and exit 0.
kill -INT "$SERVE_PID"
wait "$SERVE_PID"
echo "loopback serve drained cleanly"

echo "== cluster e2e: build-shards -> 4x serve --shard -> route =="
# Helper: poll a background process's log for a "... port N" line.
wait_port() { # logfile pattern -> prints port, empty on timeout
  local port=""
  for _ in $(seq 1 100); do
    port="$(sed -n "s/.*$2 \([0-9]*\).*/\1/p" "$1")"
    [[ -n "$port" ]] && break
    sleep 0.1
  done
  echo "$port"
}
# The flat index is the quantizer-free kind: a row's distance depends only
# on the query and that row, so the routed merge is bit-identical to a
# single node (shard_map.h). Trained quantizers (pq/sq8/ivf*) would fit
# per-shard codebooks and break the equality this stage asserts.
"$CLI" build-shards --kg "$SNAPDIR/kg.tsv" --model "$SNAPDIR/model.bin" \
  --shards 4 --out-dir "$SNAPDIR/shards" --kind flat --epochs 2 --triplets 4
test -s "$SNAPDIR/shards/shards.map"
SHARD_PIDS=()
SHARD_ADDRS=""
for k in 0 1 2 3; do
  "$CLI" serve --kg "$SNAPDIR/kg.tsv" --model "$SNAPDIR/model.bin" \
    --shard "$k/4" --kind flat --port 0 --epochs 2 --triplets 4 \
    > "$SNAPDIR/shard$k.log" 2>&1 &
  SHARD_PIDS+=("$!")
done
for k in 0 1 2 3; do
  SPORT="$(wait_port "$SNAPDIR/shard$k.log" 'listening on port')"
  if [[ -z "$SPORT" ]]; then
    echo "FAIL: shard $k never reported its port"
    cat "$SNAPDIR/shard$k.log"
    exit 1
  fi
  SHARD_ADDRS="${SHARD_ADDRS:+$SHARD_ADDRS,}127.0.0.1:$SPORT"
done
"$CLI" route --shards "$SHARD_ADDRS" --port 0 \
  > "$SNAPDIR/router.log" 2>&1 &
ROUTER_PID=$!
RPORT="$(wait_port "$SNAPDIR/router.log" 'listening on port')"
if [[ -z "$RPORT" ]]; then
  echo "FAIL: router never reported its port"
  cat "$SNAPDIR/router.log"
  exit 1
fi
# Bit-identical assertion: every sampled routed result must equal the
# in-process single-node answer, ids and order both.
"$CLI" remote-bench --kg "$SNAPDIR/kg.tsv" --model "$SNAPDIR/model.bin" \
  --host 127.0.0.1 --port "$RPORT" --mode closed --requests 100 \
  --verify-local 1 --kind flat --epochs 2 --triplets 4
# Kill one shard: the routed reply must say so (partial + missing list),
# not shrink silently.
kill -9 "${SHARD_PIDS[1]}"
"$CLI" remote-bench --kg "$SNAPDIR/kg.tsv" --host 127.0.0.1 \
  --port "$RPORT" --requests 4 --expect-partial 1
kill -TERM "$ROUTER_PID" "${SHARD_PIDS[0]}" "${SHARD_PIDS[2]}" \
  "${SHARD_PIDS[3]}"
wait "$ROUTER_PID"
echo "router drained cleanly"

echo "== cluster e2e: WAL-shipping leader -> replicate --converge-seq =="
"$CLI" serve --kg "$SNAPDIR/kg.tsv" --model "$SNAPDIR/model.bin" \
  --kind flat --port 0 --wal "$SNAPDIR/leader.wal" --replication-port 0 \
  --mutations 20 --epochs 2 --triplets 4 > "$SNAPDIR/leader.log" 2>&1 &
LEADER_PID=$!
WPORT="$(wait_port "$SNAPDIR/leader.log" 'shipping WAL on port')"
if [[ -z "$WPORT" ]]; then
  echo "FAIL: leader never reported its replication port"
  cat "$SNAPDIR/leader.log"
  exit 1
fi
# Exits 0 only once the follower's replication lag reaches 0 at or past
# the leader's 20-mutation storm.
"$CLI" replicate --leader "127.0.0.1:$WPORT" --kg "$SNAPDIR/kg.tsv" \
  --model "$SNAPDIR/model.bin" --wal "$SNAPDIR/follower.wal" --kind flat \
  --converge-seq 20 --timeout-ms 60000 --epochs 2 --triplets 4
kill -TERM "$LEADER_PID"
wait "$LEADER_PID"
echo "follower converged; leader drained cleanly"

echo "== observability: metrics-dump families vs OBSERVABILITY.md =="
# --wal attaches an updater so the update_* gauge families are emitted too
# (without it the exposition legitimately omits them).
"$CLI" metrics-dump --kg "$SNAPDIR/kg.tsv" --model "$SNAPDIR/model.bin" \
  --wal "$SNAPDIR/ci-metrics.wal" --epochs 2 --triplets 4 --requests 100 \
  > "$SNAPDIR/metrics.txt"
# Families the exporter actually emitted on this run.
sed -n 's/^# TYPE \([a-z0-9_]*\) .*/\1/p' "$SNAPDIR/metrics.txt" \
  | sort -u > "$SNAPDIR/emitted.txt"
# Families the ops guide documents (### emblookup_... headings).
sed -n 's/^### `\(emblookup_[a-z0-9_]*\)`.*/\1/p' OBSERVABILITY.md \
  | sort -u > "$SNAPDIR/documented.txt"
if ! comm -23 "$SNAPDIR/emitted.txt" "$SNAPDIR/documented.txt" \
    | grep . ; then :; else
  echo "FAIL: metric families emitted but not documented in OBSERVABILITY.md (above)"
  exit 1
fi
if ! comm -13 "$SNAPDIR/emitted.txt" "$SNAPDIR/documented.txt" \
    | grep . ; then :; else
  echo "FAIL: metric families documented in OBSERVABILITY.md but never emitted (above)"
  exit 1
fi
echo "metric families in lockstep: $(wc -l < "$SNAPDIR/emitted.txt")"

echo "== docs: CLI subcommands vs README =="
tools/check_docs.sh

echo "CI OK"
