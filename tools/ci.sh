#!/usr/bin/env bash
# Continuous-integration driver:
#   1. tier-1 verify — portable (no -march=native) Release build + full
#      ctest suite (ROADMAP.md's gate); the build includes every bench
#      target, so bench-only bit-rot fails here too;
#   2. the same suite under EMBLOOKUP_KERNELS=scalar, pinning the SIMD
#      dispatcher to the portable fallback kernels so that path stays
#      green on hardware where it is never auto-selected;
#   3. ASan pass over the concurrency-heavy suites (common_test +
#      serve_test), the kernel property tests, store_test, and
#      update_test (snapshot/WAL corruption handling must fail with
#      Status, never with UB);
#   4. TSan pass over the lock-sensitive suites — serve_test plus the
#      update subsystem's mutate-while-lookup stress test — pinning the
#      RCU publish / epoch-invalidation paths data-race-free;
#   5. snapshot round trip through the CLI — build-snapshot ->
#      snapshot-info -> serve --snapshot on a tiny synthetic KG, proving
#      the on-disk container end to end (DESIGN.md §7).
#
# Usage: tools/ci.sh [jobs]    (defaults to nproc)
set -euo pipefail
cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

echo "== tier-1: portable build (tests + benches) + ctest =="
cmake -B build-ci -S . -DEMBLOOKUP_NATIVE_ARCH=OFF
cmake --build build-ci -j "$JOBS"
(cd build-ci && ctest --output-on-failure -j "$JOBS")

echo "== tier-1b: scalar-kernel fallback ctest =="
(cd build-ci && EMBLOOKUP_KERNELS=scalar ctest --output-on-failure -j "$JOBS")

echo "== asan: common_test + serve_test + kernels_test + store_test + update_test =="
cmake -B build-asan -S . -DEMBLOOKUP_NATIVE_ARCH=OFF \
  -DEMBLOOKUP_SANITIZE=address
cmake --build build-asan -j "$JOBS" --target common_test serve_test \
  kernels_test store_test update_test
./build-asan/tests/common_test
./build-asan/tests/serve_test
./build-asan/tests/kernels_test
./build-asan/tests/store_test
./build-asan/tests/update_test

echo "== tsan: serve_test + update concurrency stress =="
cmake -B build-tsan -S . -DEMBLOOKUP_NATIVE_ARCH=OFF \
  -DEMBLOOKUP_SANITIZE=thread
cmake --build build-tsan -j "$JOBS" --target serve_test update_test
./build-tsan/tests/serve_test
./build-tsan/tests/update_test --gtest_filter='ConcurrencyTest.*'

echo "== snapshot round trip: build-snapshot -> snapshot-info -> serve =="
SNAPDIR="$(mktemp -d)"
trap 'rm -rf "$SNAPDIR"' EXIT
CLI=build-ci/tools/emblookup_cli
"$CLI" generate-kg --entities 200 --seed 7 --out "$SNAPDIR/kg.tsv"
"$CLI" train --kg "$SNAPDIR/kg.tsv" --model "$SNAPDIR/model.bin" \
  --epochs 2 --triplets 4
"$CLI" build-snapshot --kg "$SNAPDIR/kg.tsv" --model "$SNAPDIR/model.bin" \
  --out "$SNAPDIR/snap.bin" --kind pq --epochs 2 --triplets 4
"$CLI" snapshot-info "$SNAPDIR/snap.bin"
"$CLI" serve --kg "$SNAPDIR/kg.tsv" --snapshot "$SNAPDIR/snap.bin" \
  --clients 2 --requests 100 --epochs 2 --triplets 4

echo "CI OK"
