// Command-line front end for the EmbLookup library. Subcommands:
//
//   emblookup_cli generate-kg --entities 5000 --seed 42 --out kg.tsv
//   emblookup_cli train       --kg kg.tsv --model model.bin
//                             [--epochs 16] [--triplets 24]
//   emblookup_cli lookup      --kg kg.tsv --model model.bin
//                             --query "Germeny" [-k 10]
//   emblookup_cli repl        --kg kg.tsv --model model.bin
//   emblookup_cli serve       --kg kg.tsv --model model.bin
//                             [--snapshot snap.bin] [--port P] [--loops N]
//                             [--clients 4] [--requests 2000] [--k 10]
//                             [--batch 32] [--delay-us 1000] [--cache 1]
//                             [--encode-cache-entries N]
//                             [--depth 4096] [--swaps 0]
//                             [--metrics-port P] [--trace-sample R]
//                             [--slow-us T] [--slow-log F]
//                             [--shard k/N] [--replication-port P]
//                             [--mutations N]
//   emblookup_cli remote-bench --kg kg.tsv --host H --port P
//                             [--mode closed|open] [--requests N] [--k K]
//                             [--clients C] [--rate QPS] [--conns C]
//                             [--dist poisson|uniform] [--deadline-us D]
//                             [--verify-local 0|1 --model model.bin]
//                             [--expect-partial 0|1]
//   emblookup_cli build-shards --kg kg.tsv --model model.bin
//                             --shards N --out-dir DIR [--kind K]
//   emblookup_cli route       --shards host:port,host:port,...
//                             [--port P] [--timeout-us T] [--retries R]
//                             [--hedge-us H] [--eject-after F]
//                             [--probe-ms M]
//   emblookup_cli replicate   --leader host:port --kg kg.tsv
//                             --model model.bin --wal wal.log
//                             [--converge-seq S] [--timeout-ms T]
//   emblookup_cli metrics-dump --kg kg.tsv --model model.bin
//                             [--wal wal.log] [--requests 200] [--k 10]
//   emblookup_cli build-snapshot --kg kg.tsv --model model.bin
//                             --out snap.bin
//                             [--kind flat|pq|ivfflat|ivfpq|sq8|hnsw]
//                             [--aliases 0|1] [--hnsw-m M]
//                             [--hnsw-ef-construction C] [--hnsw-ef-search S]
//   emblookup_cli snapshot-info snap.bin
//   emblookup_cli kernel-info
//   emblookup_cli add-entity  --kg kg.tsv --model model.bin --wal wal.log
//                             --label L [--qid Q] [--aliases "a,b"] [--k K]
//   emblookup_cli remove-entity --kg kg.tsv --model model.bin --wal wal.log
//                             --id N
//   emblookup_cli compact     --kg kg.tsv --model model.bin --wal wal.log
//                             [--snapshot-out snap.bin --kg-out kg2.tsv]
//
// The KG format is the TSV produced by KnowledgeGraph::SaveTsv. Training
// writes only the encoder weights; `lookup`/`repl`/`serve` rebuild the
// entity index on startup (deterministic given the KG + options). `serve`
// starts the in-process LookupServer (micro-batching dispatcher + query
// cache, DESIGN.md serving section), drives it with a closed-loop Zipfian
// load generator, optionally performs online index swaps mid-run, and
// prints the serving metrics dump.
//
// `build-snapshot` persists the full serving state (index payloads, encoder
// weights, entity catalog) as one checksummed file (DESIGN.md §7);
// `serve --snapshot` then mmaps it at startup instead of re-embedding the
// KG — the instant-cold-start path. `snapshot-info` prints the container
// header, section table and per-section checksum status.
//
// `add-entity` / `remove-entity` / `compact` exercise the online-update
// path (DESIGN.md §8): mutations are logged to the write-ahead log given
// by --wal before they apply, so they survive process exit — the next
// command on the same --wal replays them. `compact --snapshot-out/--kg-out`
// makes the state durable (Persist) and shrinks the WAL to its tombstone
// registry. `serve --wal` attaches the updater to the running server with
// background compaction enabled.
//
// Observability (DESIGN.md §9, OBSERVABILITY.md): `metrics-dump` runs a
// short self-driven load and prints the full Prometheus text exposition —
// the quickest way to see every exported family. `serve --metrics-port P`
// exposes the same text live over plain HTTP while the load runs (port 0
// picks a free port); `--trace-sample R` head-samples request traces at
// rate R, and `--slow-us T [--slow-log F]` emits a JSON span tree for
// every request slower than T microseconds.
//
// Remote serving (DESIGN.md §10): `serve --port P` starts the epoll socket
// front end (binary wire protocol + HTTP JSON fallback on one port; port 0
// picks a free port, printed as "listening on port N") instead of the
// self-driven load, then blocks until SIGINT/SIGTERM — the signal drains
// in-flight requests before exit. `remote-bench` drives a running server
// over the wire: closed-loop (each client waits for its reply) or
// open-loop (fixed-rate Poisson/uniform injection; latency is measured
// from the scheduled injection time so coordinated omission is accounted,
// and late injections are reported). `--verify-local 1` first checks that
// remote results are bit-identical to an in-process LookupServer built
// from the same --kg/--model.
//
// Cluster serving (DESIGN.md §12): `build-shards` hash-partitions the
// entity catalog into N per-shard snapshots plus a checksummed shards.map
// manifest; `serve --shard k/N` serves one partition (full catalog loaded,
// index built over only its members, global entity ids kept); `route` is
// the scatter-gather front end — it fans each lookup to every shard and
// merges the per-shard top-k with the shared tie-broken heap, so routed
// answers are bit-identical to a single index over the whole catalog
// (remote-bench --verify-local asserts exactly that through a router).
// Shards that miss their budget are dropped from that answer, which is
// then explicitly partial (remote-bench --expect-partial probes for it);
// repeated failures eject a shard until a ping reprobe. `serve --wal W
// --replication-port P` additionally ships the WAL to followers;
// `replicate` runs a follower that replays the stream into its own
// updater (--converge-seq S exits 0 once lag reaches 0 at or past S), and
// `serve --mutations N` applies N synthetic mutations so replication can
// be exercised end to end.
//
// Every command that builds an index accepts --kind (synonym: --index) to
// pick the ANN backend; the HNSW graph parameters ride along as --hnsw-m /
// --hnsw-ef-construction / --hnsw-ef-search. `kernel-info` reports which
// SIMD kernel tiers this build/CPU supports, which one dispatch selected
// (honors the EMBLOOKUP_KERNELS override) and which index backends are
// available — CI uses it to skip unavailable forced tiers instead of
// failing.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#ifndef _WIN32
#include <sys/socket.h>
#include <sys/stat.h>
#endif

#include "ann/kernels.h"
#include "cluster/metrics.h"
#include "cluster/replication.h"
#include "cluster/router.h"
#include "cluster/shard_map.h"
#include "common/rng.h"
#include "common/timing.h"
#include "core/emblookup.h"
#include "kg/synthetic_kg.h"
#include "net/client.h"
#include "net/server.h"
#include "net/socket.h"
#include "obs/http_endpoint.h"
#include "serve/exporter.h"
#include "serve/lookup_server.h"
#include "store/index_io.h"
#include "store/snapshot_reader.h"
#include "update/updater.h"

using namespace emblookup;

namespace {

/// Minimal --flag value parser; flags may appear in any order.
std::map<std::string, std::string> ParseFlags(int argc, char** argv,
                                              int start) {
  std::map<std::string, std::string> flags;
  for (int i = start; i + 1 < argc; i += 2) {
    std::string key = argv[i];
    if (key.rfind("--", 0) == 0) key = key.substr(2);
    if (key.rfind('-', 0) == 0) key = key.substr(1);
    flags[key] = argv[i + 1];
  }
  return flags;
}

int64_t FlagInt(const std::map<std::string, std::string>& flags,
                const std::string& key, int64_t fallback) {
  auto it = flags.find(key);
  return it == flags.end() ? fallback : std::stoll(it->second);
}

std::string FlagStr(const std::map<std::string, std::string>& flags,
                    const std::string& key, const std::string& fallback = "") {
  auto it = flags.find(key);
  return it == flags.end() ? fallback : it->second;
}

double FlagDouble(const std::map<std::string, std::string>& flags,
                  const std::string& key, double fallback) {
  auto it = flags.find(key);
  return it == flags.end() ? fallback : std::stod(it->second);
}

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  emblookup_cli generate-kg --entities N [--seed S] --out kg.tsv\n"
      "  emblookup_cli train  --kg kg.tsv --model model.bin [--epochs E]"
      " [--triplets T]\n"
      "  emblookup_cli lookup --kg kg.tsv --model model.bin --query Q"
      " [--k K]\n"
      "  emblookup_cli repl   --kg kg.tsv --model model.bin\n"
      "  emblookup_cli serve  --kg kg.tsv --model model.bin"
      " [--snapshot F] [--wal W] [--port P] [--loops N] [--clients C]"
      " [--requests N] [--k K] [--batch B] [--delay-us D] [--cache 0|1]"
      " [--encode-cache-entries N]"
      " [--depth Q] [--swaps S] [--metrics-port P] [--trace-sample R]"
      " [--slow-us T] [--slow-log F] [--shard k/N]"
      " [--replication-port P] [--mutations N]\n"
      "  emblookup_cli remote-bench --kg kg.tsv --host H --port P"
      " [--mode closed|open] [--requests N] [--k K] [--clients C]"
      " [--rate QPS] [--conns C] [--dist poisson|uniform]"
      " [--deadline-us D] [--verify-local 0|1 --model model.bin]"
      " [--expect-partial 0|1]\n"
      "  emblookup_cli build-shards --kg kg.tsv --model model.bin"
      " --shards N --out-dir DIR [--kind K]\n"
      "  emblookup_cli route --shards host:port,... [--port P]"
      " [--timeout-us T] [--retries R] [--hedge-us H] [--eject-after F]"
      " [--probe-ms M]\n"
      "  emblookup_cli replicate --leader host:port --kg kg.tsv"
      " --model model.bin --wal wal.log [--converge-seq S]"
      " [--timeout-ms T]\n"
      "  emblookup_cli metrics-dump --kg kg.tsv --model model.bin"
      " [--wal W] [--requests N] [--k K]\n"
      "  emblookup_cli build-snapshot --kg kg.tsv --model model.bin"
      " --out snap.bin [--kind flat|pq|ivfflat|ivfpq|sq8|hnsw]"
      " [--aliases 0|1]\n"
      "      [--hnsw-m M] [--hnsw-ef-construction C] [--hnsw-ef-search S]\n"
      "  emblookup_cli snapshot-info snap.bin\n"
      "  emblookup_cli kernel-info\n"
      "  emblookup_cli add-entity --kg kg.tsv --model model.bin"
      " --wal wal.log --label L [--qid Q] [--aliases \"a,b\"] [--k K]\n"
      "  emblookup_cli remove-entity --kg kg.tsv --model model.bin"
      " --wal wal.log --id N\n"
      "  emblookup_cli compact --kg kg.tsv --model model.bin --wal wal.log"
      " [--snapshot-out snap.bin --kg-out kg2.tsv]\n");
  return 2;
}

/// The single name<->IndexKind table: ParseKind, the unknown-kind error
/// message and kernel-info's backend report all read it, so a new backend
/// shows up everywhere by adding one row (the static_assert below trips
/// when core::IndexKind grows without one).
struct KindEntry {
  const char* name;
  core::IndexKind kind;
};
constexpr KindEntry kKindTable[] = {
    {"auto", core::IndexKind::kAuto},
    {"flat", core::IndexKind::kFlat},
    {"pq", core::IndexKind::kPq},
    {"ivfflat", core::IndexKind::kIvfFlat},
    {"ivfpq", core::IndexKind::kIvfPq},
    {"sq8", core::IndexKind::kSq8},
    {"hnsw", core::IndexKind::kHnsw},
};
static_assert(sizeof(kKindTable) / sizeof(kKindTable[0]) ==
                  static_cast<int>(core::IndexKind::kHnsw) + 1,
              "kKindTable must name every core::IndexKind");

/// Comma-separated list of every valid --kind value.
std::string KindList() {
  std::string out;
  for (const KindEntry& entry : kKindTable) {
    if (!out.empty()) out += ", ";
    out += entry.name;
  }
  return out;
}

/// --kind / --index flag -> IndexKind ("" keeps the config default).
bool ParseKind(const std::string& name, core::IndexKind* kind) {
  if (name.empty()) {
    *kind = core::IndexKind::kAuto;
    return true;
  }
  for (const KindEntry& entry : kKindTable) {
    if (name == entry.name) {
      *kind = entry.kind;
      return true;
    }
  }
  return false;
}

/// snapshot-info: container header + section table + integrity report.
int SnapshotInfo(const std::string& path) {
  // Open without the up-front payload CRC pass so damaged files still get
  // a per-section report below.
  store::SnapshotReader::Options open_options;
  open_options.verify_checksums = false;
  auto opened = store::SnapshotReader::Open(path, open_options);
  if (!opened.ok()) {
    std::fprintf(stderr, "error: %s\n", opened.status().ToString().c_str());
    return 1;
  }
  const std::shared_ptr<const store::SnapshotReader> reader =
      std::move(opened).value();
  std::printf("%s: EmbLookup snapshot, format v%u, %llu bytes, %zu sections\n",
              path.c_str(), reader->version(),
              static_cast<unsigned long long>(reader->file_size()),
              reader->sections().size());

  auto meta = store::ReadIndexMeta(*reader);
  if (meta.ok()) {
    const store::IndexMeta& m = meta.value();
    static const char* kBackendNames[] = {"none",   "flat", "pq",
                                          "ivf-flat", "ivf-pq", "sq8",
                                          "hnsw"};
    const char* backend =
        m.backend < 7 ? kBackendNames[m.backend] : "unknown";
    std::printf("index: %s, dim=%lld, rows=%lld", backend,
                static_cast<long long>(m.dim), static_cast<long long>(m.count));
    if (m.backend == static_cast<uint32_t>(store::BackendKind::kSq8)) {
      std::printf(", sq8: scale/offset params=%lld floats, code bytes=%lld",
                  static_cast<long long>(2 * m.dim),
                  static_cast<long long>(m.count * m.dim));
    }
    if (m.pq_m > 0) {
      std::printf(", pq_m=%lld, ksub=%lld", static_cast<long long>(m.pq_m),
                  static_cast<long long>(m.pq_ksub));
    }
    if (m.ivf_num_lists > 0) {
      std::printf(", lists=%lld, nprobe=%lld",
                  static_cast<long long>(m.ivf_num_lists),
                  static_cast<long long>(m.ivf_nprobe));
    }
    if (m.backend == static_cast<uint32_t>(store::BackendKind::kHnsw)) {
      auto hnsw = store::ReadHnswMeta(*reader);
      if (hnsw.ok()) {
        const store::HnswMeta& h = hnsw.value();
        // Graph stats: mean layer-0 degree ~= links per node across all
        // layers is the quickest connectivity health check.
        const double avg_links =
            m.count > 0 ? static_cast<double>(h.total_links) / m.count : 0.0;
        std::printf(
            ", hnsw: m=%lld, ef-construction=%lld, ef-search=%lld, "
            "max-level=%lld, entry-point=%lld, lists=%lld, links=%lld "
            "(%.1f/node)",
            static_cast<long long>(h.m),
            static_cast<long long>(h.ef_construction),
            static_cast<long long>(h.ef_search),
            static_cast<long long>(h.max_level),
            static_cast<long long>(h.entry_point),
            static_cast<long long>(h.num_lists),
            static_cast<long long>(h.total_links), avg_links);
      } else {
        std::printf(", hnsw: <%s>", hnsw.status().ToString().c_str());
      }
    }
    std::printf("\nentities: %lld, encoder dim: %lld, alias rows: %lld\n",
                static_cast<long long>(m.num_entities),
                static_cast<long long>(m.encoder_dim),
                static_cast<long long>(m.row_to_entity_count));
    if (m.last_seq > 0 || m.delta_rows > 0 || m.tombstone_count > 0) {
      std::printf("updates: last_seq=%llu, delta_rows=%lld, tombstones=%lld, "
                  "wal-tail %s\n",
                  static_cast<unsigned long long>(m.last_seq),
                  static_cast<long long>(m.delta_rows),
                  static_cast<long long>(m.tombstone_count),
                  reader->Find(store::SectionId::kWalTail) != nullptr
                      ? "embedded"
                      : "absent");
    }
  } else {
    std::printf("index: <%s>\n", meta.status().ToString().c_str());
  }

  std::printf("%-16s %12s %12s %10s  %s\n", "section", "offset", "bytes",
              "crc32", "integrity");
  bool all_ok = true;
  for (const store::Section& s : reader->sections()) {
    const Status verified = reader->VerifySection(s);
    if (!verified.ok()) all_ok = false;
    std::printf("%-16s %12llu %12llu %10x  %s\n", store::SectionName(s.id),
                static_cast<unsigned long long>(s.offset),
                static_cast<unsigned long long>(s.size), s.crc,
                verified.ok() ? "ok" : "CORRUPT");
  }
  return all_ok ? 0 : 1;
}

/// Closed-loop load generator against a running LookupServer: `clients`
/// threads issue Zipfian-popularity label/alias queries and wait for each
/// future before sending the next (the closed-loop protocol of the bench
/// suite). Returns the number of failed lookups.
uint64_t RunLoad(serve::LookupServer* server, const kg::KnowledgeGraph& graph,
                 int clients, int64_t requests, int64_t k) {
  std::atomic<uint64_t> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      Rng rng(0x5e57e + c);
      const uint64_t n = static_cast<uint64_t>(graph.num_entities());
      for (int64_t i = c; i < requests; i += clients) {
        const kg::Entity& entity =
            graph.entity(static_cast<kg::EntityId>(rng.Zipf(n, 1.1)));
        const std::string& query =
            !entity.aliases.empty() && rng.Bernoulli(0.3)
                ? rng.Choice(entity.aliases)
                : entity.label;
        auto result = server->LookupSync(query, k);
        if (!result.ok()) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  return failures.load();
}

/// Deterministic Zipfian query stream — the same popularity model RunLoad
/// uses, pre-materialized so remote-bench clients and the verify-local
/// pass see identical queries.
std::vector<std::string> BuildQueries(const kg::KnowledgeGraph& graph,
                                      int64_t n, uint64_t seed) {
  Rng rng(seed);
  const uint64_t num_entities = static_cast<uint64_t>(graph.num_entities());
  std::vector<std::string> queries;
  queries.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    const kg::Entity& entity =
        graph.entity(static_cast<kg::EntityId>(rng.Zipf(num_entities, 1.1)));
    queries.push_back(!entity.aliases.empty() && rng.Bernoulli(0.3)
                          ? rng.Choice(entity.aliases)
                          : entity.label);
  }
  return queries;
}

double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double pos = p * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

void PrintLatencySummary(const char* label, std::vector<double>* lat_us) {
  std::sort(lat_us->begin(), lat_us->end());
  std::printf("%s: p50 %.0fus  p90 %.0fus  p99 %.0fus  max %.0fus "
              "(%zu samples)\n",
              label, Percentile(*lat_us, 0.5), Percentile(*lat_us, 0.9),
              Percentile(*lat_us, 0.99),
              lat_us->empty() ? 0.0 : lat_us->back(), lat_us->size());
}

volatile std::sig_atomic_t g_shutdown_signal = 0;
void OnShutdownSignal(int) { g_shutdown_signal = 1; }

/// remote-bench: drives a `serve --port` instance over the wire.
/// Closed-loop mode: `clients` connections, each waiting for its reply
/// before the next send. Open-loop mode: `conns` connections inject at a
/// fixed aggregate `rate` (Poisson or uniform gaps) regardless of reply
/// progress — a sender and a reader thread per connection, pipelined ids —
/// and latency is measured from the *scheduled* injection time, so server
/// slowdowns surface as latency instead of silently slowing the generator
/// (coordinated omission). Injections that fall >1ms behind schedule are
/// reported as late.
int RunRemoteBench(const std::map<std::string, std::string>& flags,
                   const kg::KnowledgeGraph& graph,
                   const core::EmbLookupOptions& options,
                   const std::string& model_path) {
  const std::string host = FlagStr(flags, "host", "127.0.0.1");
  const int port = static_cast<int>(FlagInt(flags, "port", -1));
  if (port < 0) {
    std::fprintf(stderr, "remote-bench: --port is required\n");
    return 2;
  }
  const std::string mode = FlagStr(flags, "mode", "closed");
  const int64_t requests = FlagInt(flags, "requests", 2000);
  const int64_t k = FlagInt(flags, "k", 10);
  const uint64_t deadline_us =
      static_cast<uint64_t>(FlagInt(flags, "deadline-us", 0));
  const std::vector<std::string> queries = BuildQueries(
      graph, requests, static_cast<uint64_t>(FlagInt(flags, "seed", 0x5e57e)));

  if (FlagInt(flags, "verify-local", 0) != 0) {
    // Answer a sample both remotely and through an in-process LookupServer
    // built from the same KG + model; the index build is deterministic, so
    // the id lists must match bit for bit.
    if (model_path.empty()) {
      std::fprintf(stderr, "remote-bench: --verify-local needs --model\n");
      return 2;
    }
    auto restored = core::EmbLookup::LoadFromKg(graph, options, model_path);
    if (!restored.ok()) {
      std::fprintf(stderr, "cannot load model: %s\n",
                   restored.status().ToString().c_str());
      return 1;
    }
    serve::LookupServer local(restored.value().get());
    net::RemoteClient client;
    const Status connected = client.Connect(host, port);
    if (!connected.ok()) {
      std::fprintf(stderr, "cannot connect: %s\n",
                   connected.ToString().c_str());
      return 1;
    }
    const int64_t sample = std::min<int64_t>(requests, 256);
    int64_t mismatches = 0;
    for (int64_t i = 0; i < sample; ++i) {
      auto remote = client.Lookup(queries[i], k);
      auto local_result = local.LookupSync(queries[i], k);
      const bool identical = remote.ok() && local_result.ok() &&
                             remote.value().ids == local_result.value().ids;
      if (!identical && ++mismatches == 1) {
        std::fprintf(
            stderr, "verify-local mismatch on '%s': remote %s, local %s\n",
            queries[i].c_str(),
            remote.ok() ? "ok" : remote.status().ToString().c_str(),
            local_result.ok() ? "ok"
                              : local_result.status().ToString().c_str());
      }
    }
    std::printf("verify-local: %lld/%lld remote results bit-identical to "
                "in-process Submit\n",
                static_cast<long long>(sample - mismatches),
                static_cast<long long>(sample));
    if (mismatches > 0) return 1;
  }

  if (FlagInt(flags, "expect-partial", 0) != 0) {
    // Degradation probe: a scored lookup against a router with a dead
    // shard must come back explicitly partial with the missing shard
    // listed — a complete-looking answer here means silent data loss.
    net::RemoteClient client;
    const Status connected = client.Connect(host, port);
    if (!connected.ok()) {
      std::fprintf(stderr, "cannot connect: %s\n",
                   connected.ToString().c_str());
      return 1;
    }
    auto result = client.LookupScored(queries[0], k);
    if (!result.ok()) {
      std::fprintf(stderr, "expect-partial: lookup failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    const net::RemoteLookupResult& reply = result.value();
    if (!reply.partial || reply.missing_shards.empty()) {
      std::fprintf(stderr,
                   "expect-partial: reply was complete (%zu ids, %zu "
                   "missing shards) — degradation was silent\n",
                   reply.ids.size(), reply.missing_shards.size());
      return 1;
    }
    std::printf("partial response confirmed: %zu ids with %zu shard(s) "
                "missing (first: shard %u)\n",
                reply.ids.size(), reply.missing_shards.size(),
                reply.missing_shards[0]);
    return 0;
  }

  if (mode == "closed") {
    const int clients = static_cast<int>(FlagInt(flags, "clients", 4));
    std::vector<std::vector<double>> lat(clients);
    std::atomic<uint64_t> errors{0};
    std::atomic<bool> connect_failed{false};
    Stopwatch wall;
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        net::RemoteClient client;
        if (!client.Connect(host, port).ok()) {
          connect_failed.store(true);
          return;
        }
        for (int64_t i = c; i < requests; i += clients) {
          const auto start = std::chrono::steady_clock::now();
          auto result = client.Lookup(queries[i], k, deadline_us);
          const double us = std::chrono::duration<double, std::micro>(
                                std::chrono::steady_clock::now() - start)
                                .count();
          if (result.ok()) {
            lat[c].push_back(us);
          } else {
            errors.fetch_add(1);
          }
        }
      });
    }
    for (auto& t : threads) t.join();
    if (connect_failed.load()) {
      std::fprintf(stderr, "cannot connect to %s:%d\n", host.c_str(), port);
      return 1;
    }
    const double seconds = wall.ElapsedSeconds();
    std::vector<double> all;
    for (auto& v : lat) all.insert(all.end(), v.begin(), v.end());
    std::printf("closed-loop: %d clients, %lld requests in %.2fs -> %.0f qps, "
                "%llu errors\n",
                clients, static_cast<long long>(requests), seconds,
                static_cast<double>(requests) / seconds,
                static_cast<unsigned long long>(errors.load()));
    PrintLatencySummary("latency", &all);
    return all.empty() ? 1 : 0;
  }

  if (mode != "open") return Usage();

  const double rate = FlagDouble(flags, "rate", 2000.0);
  const int conns = static_cast<int>(FlagInt(flags, "conns", 4));
  const bool poisson = FlagStr(flags, "dist", "poisson") != "uniform";
  if (rate <= 0.0 || conns <= 0) return Usage();
  const double conn_rate = rate / conns;

  struct ConnState {
    net::RemoteClient client;
    std::mutex mu;
    /// request id -> scheduled injection time, removed by the reader.
    std::unordered_map<uint64_t, std::chrono::steady_clock::time_point>
        pending;
    std::atomic<int64_t> sent{0};
    std::atomic<bool> sender_done{false};
    // Sender-only:
    int64_t late = 0;
    int64_t send_failures = 0;
    double max_lag_us = 0.0;
    // Reader-only:
    int64_t received = 0;
    int64_t ok = 0;
    int64_t shed = 0;              ///< Unavailable error replies.
    int64_t deadline_exceeded = 0;
    int64_t other_errors = 0;
    std::vector<double> lat;
  };
  std::vector<std::unique_ptr<ConnState>> states;
  for (int c = 0; c < conns; ++c) {
    auto state = std::make_unique<ConnState>();
    const Status connected = state->client.Connect(host, port);
    if (!connected.ok()) {
      std::fprintf(stderr, "cannot connect: %s\n",
                   connected.ToString().c_str());
      return 1;
    }
    states.push_back(std::move(state));
  }

  Stopwatch wall;
  std::vector<std::thread> threads;
  threads.reserve(2 * conns);
  for (int c = 0; c < conns; ++c) {
    ConnState* state = states[c].get();
    const int64_t my_count =
        requests / conns + (c < requests % conns ? 1 : 0);
    // Sender: fixed-rate injection, never waiting for replies.
    threads.emplace_back([&, state, c, my_count] {
      Rng rng(0xbe9c4u + static_cast<uint64_t>(c));
      auto next = std::chrono::steady_clock::now();
      for (int64_t j = 0; j < my_count; ++j) {
        const double gap_seconds =
            poisson ? -std::log(1.0 - rng.UniformDouble()) / conn_rate
                    : 1.0 / conn_rate;
        next += std::chrono::duration_cast<
            std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(gap_seconds));
        std::this_thread::sleep_until(next);
        const double lag_us =
            std::chrono::duration<double, std::micro>(
                std::chrono::steady_clock::now() - next)
                .count();
        if (lag_us > 1000.0) ++state->late;
        if (lag_us > state->max_lag_us) state->max_lag_us = lag_us;
        const uint64_t request_id = static_cast<uint64_t>(j) + 1;
        {
          std::lock_guard<std::mutex> lock(state->mu);
          state->pending.emplace(request_id, next);
        }
        const Status sent = state->client.SendLookup(
            request_id, queries[c + j * conns], k, deadline_us);
        if (!sent.ok()) {
          ++state->send_failures;
          std::lock_guard<std::mutex> lock(state->mu);
          state->pending.erase(request_id);
          break;
        }
        state->sent.fetch_add(1, std::memory_order_release);
      }
      state->sender_done.store(true, std::memory_order_release);
    });
    // Reader: matches pipelined replies by id, latency from schedule.
    threads.emplace_back([state] {
      for (;;) {
        if (state->sender_done.load(std::memory_order_acquire) &&
            state->received >= state->sent.load(std::memory_order_acquire)) {
          break;
        }
        auto reply = state->client.ReadReply();
        if (!reply.ok()) break;  // Disconnect; the rest count as lost.
        const auto now = std::chrono::steady_clock::now();
        net::Frame frame = std::move(reply).value();
        std::chrono::steady_clock::time_point scheduled;
        {
          std::lock_guard<std::mutex> lock(state->mu);
          auto it = state->pending.find(frame.request_id);
          if (it == state->pending.end()) continue;
          scheduled = it->second;
          state->pending.erase(it);
        }
        ++state->received;
        const double us =
            std::chrono::duration<double, std::micro>(now - scheduled)
                .count();
        if (frame.type == net::FrameType::kLookupResponse) {
          ++state->ok;
          state->lat.push_back(us);
        } else if (frame.type == net::FrameType::kError &&
                   frame.error_code == StatusCode::kUnavailable) {
          ++state->shed;
        } else if (frame.type == net::FrameType::kError &&
                   frame.error_code == StatusCode::kDeadlineExceeded) {
          ++state->deadline_exceeded;
        } else {
          ++state->other_errors;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  const double seconds = wall.ElapsedSeconds();

  int64_t sent = 0, ok = 0, shed = 0, deadline_hits = 0, other = 0;
  int64_t late = 0, send_failures = 0, received = 0;
  double max_lag_us = 0.0;
  std::vector<double> all;
  for (const auto& state : states) {
    sent += state->sent.load();
    ok += state->ok;
    shed += state->shed;
    deadline_hits += state->deadline_exceeded;
    other += state->other_errors;
    late += state->late;
    send_failures += state->send_failures;
    received += state->received;
    max_lag_us = std::max(max_lag_us, state->max_lag_us);
    all.insert(all.end(), state->lat.begin(), state->lat.end());
  }
  std::printf("open-loop (%s): target %.0f qps over %d conns, achieved "
              "%.0f qps (%lld replies in %.2fs)\n",
              poisson ? "poisson" : "uniform", rate, conns,
              static_cast<double>(received) / seconds,
              static_cast<long long>(received), seconds);
  std::printf("sent %lld  ok %lld  shed(unavailable) %lld  "
              "deadline-exceeded %lld  other-errors %lld  "
              "send-failures %lld\n",
              static_cast<long long>(sent), static_cast<long long>(ok),
              static_cast<long long>(shed),
              static_cast<long long>(deadline_hits),
              static_cast<long long>(other),
              static_cast<long long>(send_failures));
  std::printf("late injections (>1ms behind schedule): %lld, "
              "max lag %.1fms\n",
              static_cast<long long>(late), max_lag_us / 1000.0);
  PrintLatencySummary("latency from scheduled injection", &all);
  return received > 0 ? 0 : 1;
}

/// "a,b,c" -> {"a", "b", "c"} (empty pieces dropped).
std::vector<std::string> SplitAliases(const std::string& csv) {
  std::vector<std::string> out;
  size_t begin = 0;
  while (begin <= csv.size()) {
    size_t end = csv.find(',', begin);
    if (end == std::string::npos) end = csv.size();
    if (end > begin) out.push_back(csv.substr(begin, end - begin));
    begin = end + 1;
  }
  return out;
}

core::EmbLookupOptions MakeOptions(
    const std::map<std::string, std::string>& flags) {
  core::EmbLookupOptions options;
  options.trainer.epochs = static_cast<int>(FlagInt(flags, "epochs", 16));
  options.miner.triplets_per_entity =
      static_cast<int>(FlagInt(flags, "triplets", 24));
  options.trainer.log_every = 2;
  options.index.hnsw_m = FlagInt(flags, "hnsw-m", options.index.hnsw_m);
  options.index.hnsw_ef_construction = FlagInt(
      flags, "hnsw-ef-construction", options.index.hnsw_ef_construction);
  options.index.hnsw_ef_search =
      FlagInt(flags, "hnsw-ef-search", options.index.hnsw_ef_search);
  // Encoder-output cache in front of the batched forward on query paths
  // (DESIGN.md §13); 0 (default) disables it so offline runs stay
  // bit-reproducible regardless of query order.
  options.encode_cache_entries =
      static_cast<size_t>(FlagInt(flags, "encode-cache-entries", 0));
  return options;
}

void PrintResults(const kg::KnowledgeGraph& graph,
                  const std::vector<core::LookupResult>& results) {
  for (const core::LookupResult& r : results) {
    const kg::Entity& e = graph.entity(r.entity);
    std::printf("  %-10s %-36s dist=%.4f\n", e.qid.c_str(), e.label.c_str(),
                r.dist);
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  const auto flags = ParseFlags(argc, argv, 2);

  if (command == "generate-kg") {
    const std::string out = FlagStr(flags, "out");
    if (out.empty()) return Usage();
    kg::SyntheticKgOptions options;
    options.num_entities = FlagInt(flags, "entities", 5000);
    options.seed = static_cast<uint64_t>(FlagInt(flags, "seed", 42));
    const kg::KnowledgeGraph graph = kg::GenerateSyntheticKg(options);
    const Status status = graph.SaveTsv(out);
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("wrote %lld entities, %lld facts to %s\n",
                static_cast<long long>(graph.num_entities()),
                static_cast<long long>(graph.num_facts()), out.c_str());
    return 0;
  }

  if (command == "snapshot-info") {
    if (argc < 3) return Usage();
    return SnapshotInfo(argv[2]);
  }

  if (command == "kernel-info") {
    // Which SIMD tiers this build + CPU can execute, and which one
    // dispatch picked (EMBLOOKUP_KERNELS is honored, so forcing an
    // unavailable tier visibly falls back here rather than crashing).
    using ann::kernels::Arch;
    for (Arch arch :
         {Arch::kScalar, Arch::kAvx2, Arch::kAvx512, Arch::kNeon}) {
      std::printf("tier %s: %s\n", ann::kernels::ArchName(arch),
                  ann::kernels::Table(arch) != nullptr ? "available"
                                                       : "unavailable");
    }
    std::printf("dispatched: %s\n", ann::kernels::Dispatch().name);
    // Index backends this binary can build and serve — every kind is
    // compiled in unconditionally, so the list equals the kind table;
    // printing it per backend keeps the output greppable the same way the
    // tier lines are ("backend hnsw: available").
    for (const KindEntry& entry : kKindTable) {
      if (entry.kind == core::IndexKind::kAuto) continue;
      std::printf("backend %s: available\n", entry.name);
    }
    return 0;
  }

  // Scatter-gather router front end (DESIGN.md §12). Needs no KG or model:
  // the shards hold the data; the router only fans out and merges.
  if (command == "route") {
    const std::string shards_csv = FlagStr(flags, "shards");
    if (shards_csv.empty()) return Usage();
    cluster::RouterOptions router_options;
    router_options.shard_addrs = SplitAliases(shards_csv);
    router_options.shard_timeout_us =
        static_cast<uint64_t>(FlagInt(flags, "timeout-us", 250000));
    router_options.retries = static_cast<int>(FlagInt(flags, "retries", 1));
    router_options.hedge_delay_us =
        static_cast<uint64_t>(FlagInt(flags, "hedge-us", 0));
    router_options.eject_after_failures =
        static_cast<int>(FlagInt(flags, "eject-after", 3));
    router_options.probe_interval_ms = FlagInt(flags, "probe-ms", 100);
    cluster::Router router;
    const Status started =
        router.Start(router_options, static_cast<int>(FlagInt(flags, "port", 0)));
    if (!started.ok()) {
      std::fprintf(stderr, "router failed: %s\n", started.ToString().c_str());
      return 1;
    }
    std::printf("listening on port %d (scatter-gather router over %zu "
                "shards)\n",
                router.port(), router_options.shard_addrs.size());
    // Launchers (ci.sh) read this line to find the port.
    std::fflush(stdout);
    std::signal(SIGINT, OnShutdownSignal);
    std::signal(SIGTERM, OnShutdownSignal);
    while (g_shutdown_signal == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    router.Stop();
    const cluster::RouterStatsSnapshot stats = router.Stats();
    std::printf("routed %llu requests (%llu partial); %llu shard rpcs, "
                "%llu failures, %llu retries, %llu hedged; %llu ejections / "
                "%llu reinstatements\n",
                static_cast<unsigned long long>(stats.requests),
                static_cast<unsigned long long>(stats.partial_responses),
                static_cast<unsigned long long>(stats.shard_rpcs),
                static_cast<unsigned long long>(stats.shard_rpc_failures),
                static_cast<unsigned long long>(stats.shard_retries),
                static_cast<unsigned long long>(stats.hedged_rpcs),
                static_cast<unsigned long long>(stats.ejections),
                static_cast<unsigned long long>(stats.reinstatements));
    return 0;
  }

  // Remaining commands need a KG; all but `serve --snapshot` (which reads
  // the encoder weights out of the snapshot) also need a model file.
  const std::string kg_path = FlagStr(flags, "kg");
  const std::string model_path = FlagStr(flags, "model");
  const std::string snapshot_path = FlagStr(flags, "snapshot");
  const bool serve_from_snapshot =
      command == "serve" && !snapshot_path.empty();
  // remote-bench only needs the model for the --verify-local pass.
  const bool bench_without_model =
      command == "remote-bench" && FlagInt(flags, "verify-local", 0) == 0;
  if (kg_path.empty() ||
      (model_path.empty() && !serve_from_snapshot && !bench_without_model)) {
    return Usage();
  }
  auto loaded = kg::KnowledgeGraph::LoadTsv(kg_path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "cannot load KG: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  kg::KnowledgeGraph graph = std::move(loaded).value();
  core::EmbLookupOptions options = MakeOptions(flags);
  // Backend selection applies to every command that builds an index
  // (--index is a synonym for --kind; build-snapshot, serve, lookup, ...).
  const std::string kind_flag =
      FlagStr(flags, "kind", FlagStr(flags, "index"));
  if (!ParseKind(kind_flag, &options.index.kind)) {
    std::fprintf(stderr, "unknown index kind '%s' (valid kinds: %s)\n",
                 kind_flag.c_str(), KindList().c_str());
    return Usage();
  }

  if (command == "remote-bench") {
    return RunRemoteBench(flags, graph, options, model_path);
  }

  if (command == "train") {
    auto built = core::EmbLookup::TrainFromKg(graph, options);
    if (!built.ok()) {
      std::fprintf(stderr, "training failed: %s\n",
                   built.status().ToString().c_str());
      return 1;
    }
    const Status status = built.value()->SaveModel(model_path);
    if (!status.ok()) {
      std::fprintf(stderr, "save failed: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("trained in %.1fs (loss %.4f); weights -> %s\n",
                built.value()->train_stats().wall_seconds,
                built.value()->train_stats().final_loss, model_path.c_str());
    return 0;
  }

  if (command == "build-snapshot") {
    const std::string out = FlagStr(flags, "out");
    if (out.empty()) return Usage();
    core::EmbLookupOptions snap_options = options;  // --kind parsed above
    snap_options.index.index_aliases = FlagInt(flags, "aliases", 0) != 0;
    auto restored =
        core::EmbLookup::LoadFromKg(graph, snap_options, model_path);
    if (!restored.ok()) {
      std::fprintf(stderr, "cannot load model: %s\n",
                   restored.status().ToString().c_str());
      return 1;
    }
    Stopwatch save_watch;
    const Status status = restored.value()->SaveSnapshot(out);
    if (!status.ok()) {
      std::fprintf(stderr, "snapshot failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    std::printf("snapshot (%lld rows, %lld entities) -> %s in %.1fms\n",
                static_cast<long long>(restored.value()->index().size()),
                static_cast<long long>(graph.num_entities()), out.c_str(),
                save_watch.ElapsedSeconds() * 1e3);
    return 0;
  }

  // build-shards: hash-partition the catalog N ways and persist one full
  // serving snapshot per shard (index over that shard's members only,
  // global entity ids kept) plus the checksummed shards.map manifest.
  if (command == "build-shards") {
    const int num_shards = static_cast<int>(FlagInt(flags, "shards", 0));
    const std::string out_dir = FlagStr(flags, "out-dir");
    if (num_shards < 1 || out_dir.empty()) return Usage();
    auto map = cluster::BuildShardMap(graph, num_shards);
    if (!map.ok()) {
      std::fprintf(stderr, "cannot partition: %s\n",
                   map.status().ToString().c_str());
      return 1;
    }
    auto restored = core::EmbLookup::LoadFromKg(graph, options, model_path);
    if (!restored.ok()) {
      std::fprintf(stderr, "cannot load model: %s\n",
                   restored.status().ToString().c_str());
      return 1;
    }
#ifndef _WIN32
    ::mkdir(out_dir.c_str(), 0755);  // Existing directory is fine.
#endif
    Stopwatch build_watch;
    for (const cluster::ShardInfo& shard : map.value().shards) {
      const std::unordered_set<kg::EntityId> exclude =
          cluster::ShardExclusions(graph, shard.index, num_shards);
      auto built =
          restored.value()->BuildIndexSnapshot(options.index, &exclude);
      if (!built.ok()) {
        std::fprintf(stderr, "shard %d index build failed: %s\n",
                     shard.index, built.status().ToString().c_str());
        return 1;
      }
      const Status swapped =
          restored.value()->SwapIndex(std::move(built).value());
      if (!swapped.ok()) {
        std::fprintf(stderr, "shard %d swap failed: %s\n", shard.index,
                     swapped.ToString().c_str());
        return 1;
      }
      const std::string snap_path = out_dir + "/" + shard.snapshot_file;
      const Status saved = restored.value()->SaveSnapshot(snap_path);
      if (!saved.ok()) {
        std::fprintf(stderr, "shard %d snapshot failed: %s\n", shard.index,
                     saved.ToString().c_str());
        return 1;
      }
      std::printf("shard %d: %llu entities -> %s\n", shard.index,
                  static_cast<unsigned long long>(shard.entities),
                  snap_path.c_str());
    }
    const std::string map_path = out_dir + "/shards.map";
    const Status saved = cluster::SaveShardMap(map.value(), map_path);
    if (!saved.ok()) {
      std::fprintf(stderr, "manifest save failed: %s\n",
                   saved.ToString().c_str());
      return 1;
    }
    std::printf("sharded %lld entities %d ways in %.1fs; manifest -> %s\n",
                static_cast<long long>(graph.num_entities()), num_shards,
                build_watch.ElapsedSeconds(), map_path.c_str());
    return 0;
  }

  // replicate: follower process — replay the leader's shipped WAL into a
  // local updater until converged (or until a signal when no target seq).
  if (command == "replicate") {
    const std::string leader = FlagStr(flags, "leader");
    const std::string wal_path = FlagStr(flags, "wal");
    if (leader.empty() || wal_path.empty()) return Usage();
    auto parsed = cluster::ParseHostPort(leader);
    if (!parsed.ok()) {
      std::fprintf(stderr, "bad --leader: %s\n",
                   parsed.status().ToString().c_str());
      return 2;
    }
    auto restored = core::EmbLookup::LoadFromKg(graph, options, model_path);
    if (!restored.ok()) {
      std::fprintf(stderr, "cannot load model: %s\n",
                   restored.status().ToString().c_str());
      return 1;
    }
    update::UpdaterOptions up_options;
    up_options.wal_path = wal_path;
    auto opened = update::IndexUpdater::Open(restored.value().get(), &graph,
                                             up_options);
    if (!opened.ok()) {
      std::fprintf(stderr, "cannot open updater: %s\n",
                   opened.status().ToString().c_str());
      return 1;
    }
    cluster::WalReplica replica;
    cluster::WalReplicaOptions rep_options;
    rep_options.leader_host = parsed.value().first;
    rep_options.leader_port = parsed.value().second;
    const Status started = replica.Start(opened.value().get(), rep_options);
    if (!started.ok()) {
      std::fprintf(stderr, "replica failed: %s\n", started.ToString().c_str());
      return 1;
    }
    std::printf("replicating from %s into wal %s\n", leader.c_str(),
                wal_path.c_str());
    std::fflush(stdout);

    const int64_t converge_seq = FlagInt(flags, "converge-seq", 0);
    if (converge_seq > 0) {
      const auto timeout =
          std::chrono::milliseconds(FlagInt(flags, "timeout-ms", 30000));
      const auto deadline = std::chrono::steady_clock::now() + timeout;
      bool converged = false;
      if (replica.WaitForSeq(static_cast<uint64_t>(converge_seq), timeout)) {
        // Applied past the target; now wait for lag 0 so the leader has
        // nothing further in flight either.
        while (std::chrono::steady_clock::now() < deadline) {
          const cluster::WalReplicaStatsSnapshot s = replica.Stats();
          if (s.replication_lag_seq == 0 &&
              s.applied_seq >= static_cast<uint64_t>(converge_seq)) {
            converged = true;
            break;
          }
          std::this_thread::sleep_for(std::chrono::milliseconds(10));
        }
      }
      const cluster::WalReplicaStatsSnapshot s = replica.Stats();
      std::printf("replica: applied seq %llu / leader seq %llu (lag %lld); "
                  "%llu segments, %llu records replayed, %llu replay "
                  "errors, %llu reconnects\n",
                  static_cast<unsigned long long>(s.applied_seq),
                  static_cast<unsigned long long>(s.leader_seq),
                  static_cast<long long>(s.replication_lag_seq),
                  static_cast<unsigned long long>(s.segments_received),
                  static_cast<unsigned long long>(s.records_replayed),
                  static_cast<unsigned long long>(s.replay_errors),
                  static_cast<unsigned long long>(s.reconnects));
      replica.Stop();
      if (!converged) {
        std::fprintf(stderr, "replicate: did not converge to seq %lld\n",
                     static_cast<long long>(converge_seq));
        return 1;
      }
      return 0;
    }

    std::signal(SIGINT, OnShutdownSignal);
    std::signal(SIGTERM, OnShutdownSignal);
    while (g_shutdown_signal == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    const cluster::WalReplicaStatsSnapshot s = replica.Stats();
    std::printf("replica stopping: applied seq %llu / leader seq %llu "
                "(lag %lld), %llu records replayed\n",
                static_cast<unsigned long long>(s.applied_seq),
                static_cast<unsigned long long>(s.leader_seq),
                static_cast<long long>(s.replication_lag_seq),
                static_cast<unsigned long long>(s.records_replayed));
    replica.Stop();
    return 0;
  }

  if (command == "serve") {
    Result<std::unique_ptr<core::EmbLookup>> restored =
        Status::FailedPrecondition("uninitialized");
    if (serve_from_snapshot) {
      Stopwatch load_watch;
      restored = core::EmbLookup::LoadSnapshot(graph, options, snapshot_path);
      if (restored.ok()) {
        std::printf("cold start from snapshot %s: %.1fms "
                    "(index mmap'd zero-copy; includes fastText pre-train)\n",
                    snapshot_path.c_str(),
                    load_watch.ElapsedSeconds() * 1e3);
      }
    } else {
      restored = core::EmbLookup::LoadFromKg(graph, options, model_path);
    }
    if (!restored.ok()) {
      std::fprintf(stderr, "cannot load model: %s\n",
                   restored.status().ToString().c_str());
      return 1;
    }

    // Shard mode: keep the whole catalog but rebuild the index over only
    // this shard's members (global entity ids survive, so a router can
    // merge our top-k with other shards' bit-identically).
    const std::string shard_spec = FlagStr(flags, "shard");
    if (!shard_spec.empty()) {
      int shard_index = -1;
      int shard_count = 0;
      if (std::sscanf(shard_spec.c_str(), "%d/%d", &shard_index,
                      &shard_count) != 2 ||
          shard_index < 0 || shard_count < 1 || shard_index >= shard_count) {
        std::fprintf(stderr, "serve: --shard wants k/N with 0 <= k < N\n");
        return 2;
      }
      const std::unordered_set<kg::EntityId> exclude =
          cluster::ShardExclusions(graph, shard_index, shard_count);
      auto built =
          restored.value()->BuildIndexSnapshot(options.index, &exclude);
      if (!built.ok()) {
        std::fprintf(stderr, "shard index build failed: %s\n",
                     built.status().ToString().c_str());
        return 1;
      }
      const Status swapped =
          restored.value()->SwapIndex(std::move(built).value());
      if (!swapped.ok()) {
        std::fprintf(stderr, "shard swap failed: %s\n",
                     swapped.ToString().c_str());
        return 1;
      }
      std::printf("shard %d/%d: indexing %lld of %lld catalog entities\n",
                  shard_index, shard_count,
                  static_cast<long long>(graph.num_entities() -
                                         static_cast<int64_t>(exclude.size())),
                  static_cast<long long>(graph.num_entities()));
    }

    serve::ServerOptions server_options;
    server_options.max_batch = FlagInt(flags, "batch", 32);
    server_options.max_delay =
        std::chrono::microseconds(FlagInt(flags, "delay-us", 1000));
    server_options.enable_cache = FlagInt(flags, "cache", 1) != 0;
    server_options.max_queue_depth =
        static_cast<size_t>(FlagInt(flags, "depth", 4096));
    server_options.obs.trace_sample_rate =
        FlagDouble(flags, "trace-sample", 0.0);
    server_options.obs.slow_query_us = FlagDouble(flags, "slow-us", 0.0);
    server_options.obs.slow_log_path = FlagStr(flags, "slow-log");
    const int clients = static_cast<int>(FlagInt(flags, "clients", 4));
    const int64_t requests = FlagInt(flags, "requests", 2000);
    const int64_t k = FlagInt(flags, "k", 10);
    const int64_t swaps = FlagInt(flags, "swaps", 0);

    // Declared before the server so the borrowed updater outlives it.
    std::unique_ptr<update::IndexUpdater> updater;
    const std::string wal_path = FlagStr(flags, "wal");
    if (!wal_path.empty()) {
      update::UpdaterOptions up_options;
      up_options.wal_path = wal_path;
      up_options.background_compaction = true;
      auto opened = update::IndexUpdater::Open(restored.value().get(), &graph,
                                               up_options);
      if (!opened.ok()) {
        std::fprintf(stderr, "cannot open updater: %s\n",
                     opened.status().ToString().c_str());
        return 1;
      }
      updater = std::move(opened).value();
    }

    serve::LookupServer server(restored.value().get(), server_options);
    if (updater != nullptr) {
      server.AttachUpdater(updater.get());
      std::printf("online updates enabled (wal %s, background compaction)\n",
                  wal_path.c_str());
    }

    // Replication leader: stream the WAL to followers (DESIGN.md §12).
    cluster::WalShipServer wal_ship;
    const int64_t replication_port = FlagInt(flags, "replication-port", -1);
    if (replication_port >= 0) {
      if (updater == nullptr) {
        std::fprintf(stderr, "serve: --replication-port requires --wal\n");
        return 2;
      }
      const Status shipping =
          wal_ship.Start(updater.get(), static_cast<int>(replication_port));
      if (!shipping.ok()) {
        std::fprintf(stderr, "replication leader failed: %s\n",
                     shipping.ToString().c_str());
        return 1;
      }
      std::printf("replication leader: shipping WAL on port %d\n",
                  wal_ship.port());
      // Follower launchers read this line to find the port.
      std::fflush(stdout);
    }
    // Declared after the server: the endpoint (and its renderer referencing
    // the server) stops before the server destructs.
    obs::MetricsHttpServer metrics_http;
    const int64_t metrics_port = FlagInt(flags, "metrics-port", -1);
    if (metrics_port >= 0) {
      const Status status = metrics_http.Start(
          static_cast<int>(metrics_port),
          [&server, &updater] {
            return serve::PrometheusText(server, updater.get());
          });
      if (!status.ok()) {
        std::fprintf(stderr, "metrics endpoint failed: %s\n",
                     status.ToString().c_str());
        return 1;
      }
      std::printf("metrics endpoint on http://127.0.0.1:%d/metrics\n",
                  metrics_http.port());
      // Scrapers read this line to find the port while the load is still
      // running; don't leave it in the stdio block buffer until exit.
      std::fflush(stdout);
    }
    if (server_options.obs.slow_query_us > 0) {
      std::printf("slow-query log: requests > %.0fus -> %s\n",
                  server_options.obs.slow_query_us,
                  server_options.obs.slow_log_path.empty()
                      ? "stderr"
                      : server_options.obs.slow_log_path.c_str());
    }

    // Remote-serving mode: expose the server over the socket front end and
    // block until SIGINT/SIGTERM, then drain in-flight requests.
    const int64_t net_port = FlagInt(flags, "port", -1);
    if (net_port >= 0) {
      net::NetServer front;
      net::NetServerOptions net_options;
      net_options.event_loops = static_cast<int>(FlagInt(flags, "loops", 2));
      const Status started =
          front.Start(&server, static_cast<int>(net_port), net_options);
      if (!started.ok()) {
        std::fprintf(stderr, "socket front end failed: %s\n",
                     started.ToString().c_str());
        return 1;
      }
      std::printf("listening on port %d "
                  "(binary wire protocol + HTTP JSON fallback; "
                  "%d event loops)\n",
                  front.port(), net_options.event_loops);
      // Launchers (ci.sh) read this line to find the port; don't leave it
      // in the stdio block buffer while we sleep.
      std::fflush(stdout);
      std::signal(SIGINT, OnShutdownSignal);
      std::signal(SIGTERM, OnShutdownSignal);
      // Mutation storm: synthetic AddEntity stream for exercising WAL
      // shipping end to end (replicate --converge-seq waits for these).
      const int64_t mutations = FlagInt(flags, "mutations", 0);
      std::thread mutator;
      if (mutations > 0) {
        if (updater == nullptr) {
          std::fprintf(stderr, "serve: --mutations requires --wal\n");
          return 2;
        }
        mutator = std::thread([&server, mutations] {
          for (int64_t i = 0; i < mutations && g_shutdown_signal == 0; ++i) {
            auto added = server.AddEntity(
                "storm entity " + std::to_string(i), "", {});
            if (!added.ok()) {
              std::fprintf(stderr, "storm mutation %lld failed: %s\n",
                           static_cast<long long>(i),
                           added.status().ToString().c_str());
              break;
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
          }
        });
      }
      while (g_shutdown_signal == 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      }
      std::printf("signal received; draining in-flight requests\n");
      if (mutator.joinable()) mutator.join();
      front.Stop();  // Stops accepting, drains, flushes, joins.
      const net::NetStatsSnapshot net_stats = front.Stats();
      std::printf(
          "connections %llu accepted / %llu closed; frames %llu in / "
          "%llu out; http %llu; protocol errors %llu; shed %llu; "
          "read pauses %llu\n",
          static_cast<unsigned long long>(net_stats.connections_accepted),
          static_cast<unsigned long long>(net_stats.connections_closed),
          static_cast<unsigned long long>(net_stats.frames_received),
          static_cast<unsigned long long>(net_stats.frames_sent),
          static_cast<unsigned long long>(net_stats.http_requests),
          static_cast<unsigned long long>(net_stats.protocol_errors),
          static_cast<unsigned long long>(net_stats.overload_rejections),
          static_cast<unsigned long long>(net_stats.read_pauses));
      if (replication_port >= 0) {
        const cluster::WalShipStatsSnapshot ship = wal_ship.Stats();
        std::printf("replication: %llu segments / %llu records shipped, "
                    "%lld follower(s) still connected\n",
                    static_cast<unsigned long long>(ship.segments_shipped),
                    static_cast<unsigned long long>(ship.records_shipped),
                    static_cast<long long>(ship.followers_connected));
      }
      std::printf("%s", server.StatsText().c_str());
      return 0;
    }

    std::printf("serving %lld requests from %d closed-loop clients "
                "(batch<=%lld, delay %lldus, cache %s)\n",
                static_cast<long long>(requests), clients,
                static_cast<long long>(server_options.max_batch),
                static_cast<long long>(FlagInt(flags, "delay-us", 1000)),
                server_options.enable_cache ? "on" : "off");
    Stopwatch wall;
    std::thread swapper;
    if (swaps > 0) {
      swapper = std::thread([&] {
        for (int64_t s = 0; s < swaps; ++s) {
          core::IndexConfig config;
          config.compress = false;
          config.kind = s % 2 == 0 ? core::IndexKind::kIvfFlat
                                   : core::IndexKind::kFlat;
          const Status status = server.SwapIndex(config);
          std::printf("swap %lld (%s): %s\n", static_cast<long long>(s),
                      s % 2 == 0 ? "ivf-flat" : "flat",
                      status.ToString().c_str());
        }
      });
    }
    const uint64_t failures = RunLoad(&server, graph, clients, requests, k);
    if (swapper.joinable()) swapper.join();
    const double seconds = wall.ElapsedSeconds();
    std::printf("\n%.0f qps (%lld requests in %.2fs), %llu failures\n\n",
                requests / seconds, static_cast<long long>(requests),
                seconds, static_cast<unsigned long long>(failures));
    std::printf("%s", server.StatsText().c_str());
    const serve::LookupServer::ObsStats obs_stats = server.GetObsStats();
    if (obs_stats.traces_sampled > 0) {
      std::printf("traces_sampled           %llu\n"
                  "slow_queries_logged      %llu\n"
                  "trace_spans_dropped      %llu\n",
                  static_cast<unsigned long long>(obs_stats.traces_sampled),
                  static_cast<unsigned long long>(
                      obs_stats.slow_queries_logged),
                  static_cast<unsigned long long>(obs_stats.spans_dropped));
    }
    return failures == 0 ? 0 : 1;
  }

  // metrics-dump: spin up a server, drive a short self-generated load so
  // every histogram has observations, and print the full Prometheus text
  // exposition. CI greps this output for the documented metric families.
  if (command == "metrics-dump") {
    auto restored = core::EmbLookup::LoadFromKg(graph, options, model_path);
    if (!restored.ok()) {
      std::fprintf(stderr, "cannot load model: %s\n",
                   restored.status().ToString().c_str());
      return 1;
    }
    serve::ServerOptions server_options;
    // Trace every request: the dump should show live span histograms and
    // nonzero trace counters.
    server_options.obs.trace_sample_rate = 1.0;
    std::unique_ptr<update::IndexUpdater> updater;
    const std::string wal_path = FlagStr(flags, "wal");
    if (!wal_path.empty()) {
      update::UpdaterOptions up_options;
      up_options.wal_path = wal_path;
      auto opened = update::IndexUpdater::Open(restored.value().get(), &graph,
                                               up_options);
      if (!opened.ok()) {
        std::fprintf(stderr, "cannot open updater: %s\n",
                     opened.status().ToString().c_str());
        return 1;
      }
      updater = std::move(opened).value();
    }
    serve::LookupServer server(restored.value().get(), server_options);
    if (updater != nullptr) server.AttachUpdater(updater.get());
    const int64_t requests = FlagInt(flags, "requests", 200);
    const uint64_t failures = RunLoad(&server, graph, /*clients=*/2, requests,
                                      FlagInt(flags, "k", 10));
    if (updater != nullptr) {
      // Touch the update path so its gauges reflect a real mutation.
      auto added = server.AddEntity("metrics dump probe", "", {});
      if (!added.ok()) {
        std::fprintf(stderr, "probe mutation failed: %s\n",
                     added.status().ToString().c_str());
        return 1;
      }
    }
    // Bring up the socket front end on an ephemeral port and drive real
    // remote traffic so the emblookup_net_* families reflect live
    // counters: binary lookups (one carrying a deadline), a ping, an HTTP
    // fallback request, and one garbage preamble for the protocol-error
    // path. Skipped (families still printed, zeroed) where epoll is
    // unavailable.
    cluster::RouterStatsSnapshot router_stats;
    net::NetServer front;
    if (front.Start(&server, 0).ok()) {
      net::RemoteClient client;
      if (client.Connect("127.0.0.1", front.port()).ok()) {
        const int64_t probes =
            std::min<int64_t>(8, graph.num_entities());
        for (int64_t i = 0; i < probes; ++i) {
          auto result =
              client.Lookup(graph.entity(static_cast<kg::EntityId>(i)).label,
                            5, i == 0 ? 1000000 : 0);
          (void)result;
        }
        (void)client.Ping();
      }
#ifndef _WIN32
      auto http_fd = net::ConnectTcp("127.0.0.1", front.port());
      if (http_fd.ok()) {
        // Connection: close — the server honors HTTP/1.1 keep-alive, and
        // this probe drains to EOF.
        const std::string http_request =
            "GET /lookup?q=probe&k=3 HTTP/1.1\r\nHost: localhost\r\n"
            "Connection: close\r\n\r\n";
        (void)net::SendAll(http_fd.value(), http_request.data(),
                           http_request.size());
        char buf[4096];
        while (::recv(http_fd.value(), buf, sizeof(buf), 0) > 0) {
        }
        net::Listener::CloseFd(http_fd.value());
      }
      auto bad_fd = net::ConnectTcp("127.0.0.1", front.port());
      if (bad_fd.ok()) {
        const char garbage[] = "XXXXXXXX";
        (void)net::SendAll(bad_fd.value(), garbage, sizeof(garbage) - 1);
        char buf[256];
        while (::recv(bad_fd.value(), buf, sizeof(buf), 0) > 0) {
        }
        net::Listener::CloseFd(bad_fd.value());
      }
#endif
      // One-shard router loopback over the live front end: routes real
      // queries through the scatter-gather path so the router families
      // carry live counters. The replication families print zeroed here
      // (this process runs no leader or follower) — the family LIST is
      // role-independent either way.
      cluster::Router router;
      cluster::RouterOptions router_options;
      router_options.shard_addrs = {"127.0.0.1:" +
                                    std::to_string(front.port())};
      if (router.Start(router_options, 0).ok()) {
        const int64_t routed_probes = std::min<int64_t>(4,
                                                        graph.num_entities());
        for (int64_t i = 0; i < routed_probes; ++i) {
          auto routed = router.Route(
              graph.entity(static_cast<kg::EntityId>(i)).label, 5);
          (void)routed;
        }
        router_stats = router.Stats();
        router.Stop();
      }
      front.Stop();
    }
    std::fputs(serve::PrometheusText(server, updater.get()).c_str(), stdout);
    std::fputs(net::PrometheusNetText(front.Stats()).c_str(), stdout);
    std::fputs(cluster::PrometheusClusterText(&router_stats, nullptr, nullptr)
                   .c_str(),
               stdout);
    return failures == 0 ? 0 : 1;
  }

  if (command == "add-entity" || command == "remove-entity" ||
      command == "compact") {
    const std::string wal_path = FlagStr(flags, "wal");
    if (wal_path.empty()) return Usage();
    auto restored = core::EmbLookup::LoadFromKg(graph, options, model_path);
    if (!restored.ok()) {
      std::fprintf(stderr, "cannot load model: %s\n",
                   restored.status().ToString().c_str());
      return 1;
    }
    core::EmbLookup* el = restored.value().get();
    update::UpdaterOptions up_options;
    up_options.wal_path = wal_path;
    auto opened = update::IndexUpdater::Open(el, &graph, up_options);
    if (!opened.ok()) {
      std::fprintf(stderr, "cannot open updater: %s\n",
                   opened.status().ToString().c_str());
      return 1;
    }
    update::IndexUpdater* updater = opened.value().get();

    if (command == "add-entity") {
      const std::string label = FlagStr(flags, "label");
      if (label.empty()) return Usage();
      auto added = updater->AddEntity(label, FlagStr(flags, "qid"),
                                      SplitAliases(FlagStr(flags, "aliases")));
      if (!added.ok()) {
        std::fprintf(stderr, "add failed: %s\n",
                     added.status().ToString().c_str());
        return 1;
      }
      std::printf("added entity %lld ('%s'); WAL %s now holds seq %llu\n",
                  static_cast<long long>(added.value()), label.c_str(),
                  wal_path.c_str(),
                  static_cast<unsigned long long>(updater->stats().last_seq));
      PrintResults(graph, el->Lookup(label, FlagInt(flags, "k", 5)));
      return 0;
    }

    if (command == "remove-entity") {
      const kg::EntityId id = FlagInt(flags, "id", -1);
      const Status status = updater->RemoveEntity(id);
      if (!status.ok()) {
        std::fprintf(stderr, "remove failed: %s\n",
                     status.ToString().c_str());
        return 1;
      }
      std::printf("removed entity %lld; WAL %s now holds seq %llu\n",
                  static_cast<long long>(id), wal_path.c_str(),
                  static_cast<unsigned long long>(updater->stats().last_seq));
      return 0;
    }

    // compact
    const std::string snap_out = FlagStr(flags, "snapshot-out");
    const std::string kg_out = FlagStr(flags, "kg-out");
    const update::UpdaterStats before = updater->stats();
    Stopwatch compact_watch;
    Status status;
    if (!snap_out.empty() && !kg_out.empty()) {
      status = updater->Persist(snap_out, kg_out);
    } else if (snap_out.empty() != kg_out.empty()) {
      return Usage();  // Persist needs both outputs.
    } else {
      status = updater->Compact();
    }
    if (!status.ok()) {
      std::fprintf(stderr, "compact failed: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("compacted %lld delta rows / %lld tombstones into the main "
                "index in %.1fms%s\n",
                static_cast<long long>(before.delta_rows),
                static_cast<long long>(before.tombstones),
                compact_watch.ElapsedSeconds() * 1e3,
                snap_out.empty()
                    ? " (in-memory only; pass --snapshot-out/--kg-out to"
                      " persist)"
                    : "; state persisted, WAL shrunk to tombstone registry");
    return 0;
  }

  if (command == "lookup" || command == "repl") {
    auto restored = core::EmbLookup::LoadFromKg(graph, options, model_path);
    if (!restored.ok()) {
      std::fprintf(stderr, "cannot load model: %s\n",
                   restored.status().ToString().c_str());
      return 1;
    }
    const int64_t k = FlagInt(flags, "k", 10);
    if (command == "lookup") {
      const std::string query = FlagStr(flags, "query");
      if (query.empty()) return Usage();
      PrintResults(graph, restored.value()->Lookup(query, k));
      return 0;
    }
    std::printf("EmbLookup REPL — type a query, empty line to exit.\n");
    std::string line;
    while (std::printf("> "), std::fflush(stdout),
           std::getline(std::cin, line)) {
      if (line.empty()) break;
      PrintResults(graph, restored.value()->Lookup(line, k));
    }
    return 0;
  }
  return Usage();
}
