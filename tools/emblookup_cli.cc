// Command-line front end for the EmbLookup library. Subcommands:
//
//   emblookup_cli generate-kg --entities 5000 --seed 42 --out kg.tsv
//   emblookup_cli train       --kg kg.tsv --model model.bin
//                             [--epochs 16] [--triplets 24]
//   emblookup_cli lookup      --kg kg.tsv --model model.bin
//                             --query "Germeny" [-k 10]
//   emblookup_cli repl        --kg kg.tsv --model model.bin
//   emblookup_cli serve       --kg kg.tsv --model model.bin
//                             [--snapshot snap.bin]
//                             [--clients 4] [--requests 2000] [--k 10]
//                             [--batch 32] [--delay-us 1000] [--cache 1]
//                             [--depth 4096] [--swaps 0]
//                             [--metrics-port P] [--trace-sample R]
//                             [--slow-us T] [--slow-log F]
//   emblookup_cli metrics-dump --kg kg.tsv --model model.bin
//                             [--wal wal.log] [--requests 200] [--k 10]
//   emblookup_cli build-snapshot --kg kg.tsv --model model.bin
//                             --out snap.bin [--kind flat|pq|ivfflat|ivfpq]
//                             [--aliases 0|1]
//   emblookup_cli snapshot-info snap.bin
//   emblookup_cli add-entity  --kg kg.tsv --model model.bin --wal wal.log
//                             --label L [--qid Q] [--aliases "a,b"] [--k K]
//   emblookup_cli remove-entity --kg kg.tsv --model model.bin --wal wal.log
//                             --id N
//   emblookup_cli compact     --kg kg.tsv --model model.bin --wal wal.log
//                             [--snapshot-out snap.bin --kg-out kg2.tsv]
//
// The KG format is the TSV produced by KnowledgeGraph::SaveTsv. Training
// writes only the encoder weights; `lookup`/`repl`/`serve` rebuild the
// entity index on startup (deterministic given the KG + options). `serve`
// starts the in-process LookupServer (micro-batching dispatcher + query
// cache, DESIGN.md serving section), drives it with a closed-loop Zipfian
// load generator, optionally performs online index swaps mid-run, and
// prints the serving metrics dump.
//
// `build-snapshot` persists the full serving state (index payloads, encoder
// weights, entity catalog) as one checksummed file (DESIGN.md §7);
// `serve --snapshot` then mmaps it at startup instead of re-embedding the
// KG — the instant-cold-start path. `snapshot-info` prints the container
// header, section table and per-section checksum status.
//
// `add-entity` / `remove-entity` / `compact` exercise the online-update
// path (DESIGN.md §8): mutations are logged to the write-ahead log given
// by --wal before they apply, so they survive process exit — the next
// command on the same --wal replays them. `compact --snapshot-out/--kg-out`
// makes the state durable (Persist) and shrinks the WAL to its tombstone
// registry. `serve --wal` attaches the updater to the running server with
// background compaction enabled.
//
// Observability (DESIGN.md §9, OBSERVABILITY.md): `metrics-dump` runs a
// short self-driven load and prints the full Prometheus text exposition —
// the quickest way to see every exported family. `serve --metrics-port P`
// exposes the same text live over plain HTTP while the load runs (port 0
// picks a free port); `--trace-sample R` head-samples request traces at
// rate R, and `--slow-us T [--slow-log F]` emits a JSON span tree for
// every request slower than T microseconds.

#include <atomic>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/timing.h"
#include "core/emblookup.h"
#include "kg/synthetic_kg.h"
#include "obs/http_endpoint.h"
#include "serve/exporter.h"
#include "serve/lookup_server.h"
#include "store/index_io.h"
#include "store/snapshot_reader.h"
#include "update/updater.h"

using namespace emblookup;

namespace {

/// Minimal --flag value parser; flags may appear in any order.
std::map<std::string, std::string> ParseFlags(int argc, char** argv,
                                              int start) {
  std::map<std::string, std::string> flags;
  for (int i = start; i + 1 < argc; i += 2) {
    std::string key = argv[i];
    if (key.rfind("--", 0) == 0) key = key.substr(2);
    if (key.rfind('-', 0) == 0) key = key.substr(1);
    flags[key] = argv[i + 1];
  }
  return flags;
}

int64_t FlagInt(const std::map<std::string, std::string>& flags,
                const std::string& key, int64_t fallback) {
  auto it = flags.find(key);
  return it == flags.end() ? fallback : std::stoll(it->second);
}

std::string FlagStr(const std::map<std::string, std::string>& flags,
                    const std::string& key, const std::string& fallback = "") {
  auto it = flags.find(key);
  return it == flags.end() ? fallback : it->second;
}

double FlagDouble(const std::map<std::string, std::string>& flags,
                  const std::string& key, double fallback) {
  auto it = flags.find(key);
  return it == flags.end() ? fallback : std::stod(it->second);
}

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  emblookup_cli generate-kg --entities N [--seed S] --out kg.tsv\n"
      "  emblookup_cli train  --kg kg.tsv --model model.bin [--epochs E]"
      " [--triplets T]\n"
      "  emblookup_cli lookup --kg kg.tsv --model model.bin --query Q"
      " [--k K]\n"
      "  emblookup_cli repl   --kg kg.tsv --model model.bin\n"
      "  emblookup_cli serve  --kg kg.tsv --model model.bin"
      " [--snapshot F] [--wal W] [--clients C]"
      " [--requests N] [--k K] [--batch B] [--delay-us D] [--cache 0|1]"
      " [--depth Q] [--swaps S] [--metrics-port P] [--trace-sample R]"
      " [--slow-us T] [--slow-log F]\n"
      "  emblookup_cli metrics-dump --kg kg.tsv --model model.bin"
      " [--wal W] [--requests N] [--k K]\n"
      "  emblookup_cli build-snapshot --kg kg.tsv --model model.bin"
      " --out snap.bin [--kind flat|pq|ivfflat|ivfpq] [--aliases 0|1]\n"
      "  emblookup_cli snapshot-info snap.bin\n"
      "  emblookup_cli add-entity --kg kg.tsv --model model.bin"
      " --wal wal.log --label L [--qid Q] [--aliases \"a,b\"] [--k K]\n"
      "  emblookup_cli remove-entity --kg kg.tsv --model model.bin"
      " --wal wal.log --id N\n"
      "  emblookup_cli compact --kg kg.tsv --model model.bin --wal wal.log"
      " [--snapshot-out snap.bin --kg-out kg2.tsv]\n");
  return 2;
}

/// --kind flag -> IndexKind ("" keeps the config default).
bool ParseKind(const std::string& name, core::IndexKind* kind) {
  if (name.empty() || name == "auto") *kind = core::IndexKind::kAuto;
  else if (name == "flat") *kind = core::IndexKind::kFlat;
  else if (name == "pq") *kind = core::IndexKind::kPq;
  else if (name == "ivfflat") *kind = core::IndexKind::kIvfFlat;
  else if (name == "ivfpq") *kind = core::IndexKind::kIvfPq;
  else return false;
  return true;
}

/// snapshot-info: container header + section table + integrity report.
int SnapshotInfo(const std::string& path) {
  // Open without the up-front payload CRC pass so damaged files still get
  // a per-section report below.
  store::SnapshotReader::Options open_options;
  open_options.verify_checksums = false;
  auto opened = store::SnapshotReader::Open(path, open_options);
  if (!opened.ok()) {
    std::fprintf(stderr, "error: %s\n", opened.status().ToString().c_str());
    return 1;
  }
  const std::shared_ptr<const store::SnapshotReader> reader =
      std::move(opened).value();
  std::printf("%s: EmbLookup snapshot, format v%u, %llu bytes, %zu sections\n",
              path.c_str(), reader->version(),
              static_cast<unsigned long long>(reader->file_size()),
              reader->sections().size());

  auto meta = store::ReadIndexMeta(*reader);
  if (meta.ok()) {
    const store::IndexMeta& m = meta.value();
    static const char* kBackendNames[] = {"none", "flat", "pq", "ivf-flat",
                                          "ivf-pq"};
    const char* backend =
        m.backend < 5 ? kBackendNames[m.backend] : "unknown";
    std::printf("index: %s, dim=%lld, rows=%lld", backend,
                static_cast<long long>(m.dim), static_cast<long long>(m.count));
    if (m.pq_m > 0) {
      std::printf(", pq_m=%lld, ksub=%lld", static_cast<long long>(m.pq_m),
                  static_cast<long long>(m.pq_ksub));
    }
    if (m.ivf_num_lists > 0) {
      std::printf(", lists=%lld, nprobe=%lld",
                  static_cast<long long>(m.ivf_num_lists),
                  static_cast<long long>(m.ivf_nprobe));
    }
    std::printf("\nentities: %lld, encoder dim: %lld, alias rows: %lld\n",
                static_cast<long long>(m.num_entities),
                static_cast<long long>(m.encoder_dim),
                static_cast<long long>(m.row_to_entity_count));
    if (m.last_seq > 0 || m.delta_rows > 0 || m.tombstone_count > 0) {
      std::printf("updates: last_seq=%llu, delta_rows=%lld, tombstones=%lld, "
                  "wal-tail %s\n",
                  static_cast<unsigned long long>(m.last_seq),
                  static_cast<long long>(m.delta_rows),
                  static_cast<long long>(m.tombstone_count),
                  reader->Find(store::SectionId::kWalTail) != nullptr
                      ? "embedded"
                      : "absent");
    }
  } else {
    std::printf("index: <%s>\n", meta.status().ToString().c_str());
  }

  std::printf("%-16s %12s %12s %10s  %s\n", "section", "offset", "bytes",
              "crc32", "integrity");
  bool all_ok = true;
  for (const store::Section& s : reader->sections()) {
    const Status verified = reader->VerifySection(s);
    if (!verified.ok()) all_ok = false;
    std::printf("%-16s %12llu %12llu %10x  %s\n", store::SectionName(s.id),
                static_cast<unsigned long long>(s.offset),
                static_cast<unsigned long long>(s.size), s.crc,
                verified.ok() ? "ok" : "CORRUPT");
  }
  return all_ok ? 0 : 1;
}

/// Closed-loop load generator against a running LookupServer: `clients`
/// threads issue Zipfian-popularity label/alias queries and wait for each
/// future before sending the next (the closed-loop protocol of the bench
/// suite). Returns the number of failed lookups.
uint64_t RunLoad(serve::LookupServer* server, const kg::KnowledgeGraph& graph,
                 int clients, int64_t requests, int64_t k) {
  std::atomic<uint64_t> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      Rng rng(0x5e57e + c);
      const uint64_t n = static_cast<uint64_t>(graph.num_entities());
      for (int64_t i = c; i < requests; i += clients) {
        const kg::Entity& entity =
            graph.entity(static_cast<kg::EntityId>(rng.Zipf(n, 1.1)));
        const std::string& query =
            !entity.aliases.empty() && rng.Bernoulli(0.3)
                ? rng.Choice(entity.aliases)
                : entity.label;
        auto result = server->LookupSync(query, k);
        if (!result.ok()) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  return failures.load();
}

/// "a,b,c" -> {"a", "b", "c"} (empty pieces dropped).
std::vector<std::string> SplitAliases(const std::string& csv) {
  std::vector<std::string> out;
  size_t begin = 0;
  while (begin <= csv.size()) {
    size_t end = csv.find(',', begin);
    if (end == std::string::npos) end = csv.size();
    if (end > begin) out.push_back(csv.substr(begin, end - begin));
    begin = end + 1;
  }
  return out;
}

core::EmbLookupOptions MakeOptions(
    const std::map<std::string, std::string>& flags) {
  core::EmbLookupOptions options;
  options.trainer.epochs = static_cast<int>(FlagInt(flags, "epochs", 16));
  options.miner.triplets_per_entity =
      static_cast<int>(FlagInt(flags, "triplets", 24));
  options.trainer.log_every = 2;
  return options;
}

void PrintResults(const kg::KnowledgeGraph& graph,
                  const std::vector<core::LookupResult>& results) {
  for (const core::LookupResult& r : results) {
    const kg::Entity& e = graph.entity(r.entity);
    std::printf("  %-10s %-36s dist=%.4f\n", e.qid.c_str(), e.label.c_str(),
                r.dist);
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  const auto flags = ParseFlags(argc, argv, 2);

  if (command == "generate-kg") {
    const std::string out = FlagStr(flags, "out");
    if (out.empty()) return Usage();
    kg::SyntheticKgOptions options;
    options.num_entities = FlagInt(flags, "entities", 5000);
    options.seed = static_cast<uint64_t>(FlagInt(flags, "seed", 42));
    const kg::KnowledgeGraph graph = kg::GenerateSyntheticKg(options);
    const Status status = graph.SaveTsv(out);
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("wrote %lld entities, %lld facts to %s\n",
                static_cast<long long>(graph.num_entities()),
                static_cast<long long>(graph.num_facts()), out.c_str());
    return 0;
  }

  if (command == "snapshot-info") {
    if (argc < 3) return Usage();
    return SnapshotInfo(argv[2]);
  }

  // Remaining commands need a KG; all but `serve --snapshot` (which reads
  // the encoder weights out of the snapshot) also need a model file.
  const std::string kg_path = FlagStr(flags, "kg");
  const std::string model_path = FlagStr(flags, "model");
  const std::string snapshot_path = FlagStr(flags, "snapshot");
  const bool serve_from_snapshot =
      command == "serve" && !snapshot_path.empty();
  if (kg_path.empty() || (model_path.empty() && !serve_from_snapshot)) {
    return Usage();
  }
  auto loaded = kg::KnowledgeGraph::LoadTsv(kg_path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "cannot load KG: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  kg::KnowledgeGraph graph = std::move(loaded).value();
  const core::EmbLookupOptions options = MakeOptions(flags);

  if (command == "train") {
    auto built = core::EmbLookup::TrainFromKg(graph, options);
    if (!built.ok()) {
      std::fprintf(stderr, "training failed: %s\n",
                   built.status().ToString().c_str());
      return 1;
    }
    const Status status = built.value()->SaveModel(model_path);
    if (!status.ok()) {
      std::fprintf(stderr, "save failed: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("trained in %.1fs (loss %.4f); weights -> %s\n",
                built.value()->train_stats().wall_seconds,
                built.value()->train_stats().final_loss, model_path.c_str());
    return 0;
  }

  if (command == "build-snapshot") {
    const std::string out = FlagStr(flags, "out");
    if (out.empty()) return Usage();
    core::EmbLookupOptions snap_options = options;
    if (!ParseKind(FlagStr(flags, "kind"), &snap_options.index.kind)) {
      return Usage();
    }
    snap_options.index.index_aliases = FlagInt(flags, "aliases", 0) != 0;
    auto restored =
        core::EmbLookup::LoadFromKg(graph, snap_options, model_path);
    if (!restored.ok()) {
      std::fprintf(stderr, "cannot load model: %s\n",
                   restored.status().ToString().c_str());
      return 1;
    }
    Stopwatch save_watch;
    const Status status = restored.value()->SaveSnapshot(out);
    if (!status.ok()) {
      std::fprintf(stderr, "snapshot failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    std::printf("snapshot (%lld rows, %lld entities) -> %s in %.1fms\n",
                static_cast<long long>(restored.value()->index().size()),
                static_cast<long long>(graph.num_entities()), out.c_str(),
                save_watch.ElapsedSeconds() * 1e3);
    return 0;
  }

  if (command == "serve") {
    Result<std::unique_ptr<core::EmbLookup>> restored =
        Status::FailedPrecondition("uninitialized");
    if (serve_from_snapshot) {
      Stopwatch load_watch;
      restored = core::EmbLookup::LoadSnapshot(graph, options, snapshot_path);
      if (restored.ok()) {
        std::printf("cold start from snapshot %s: %.1fms "
                    "(index mmap'd zero-copy; includes fastText pre-train)\n",
                    snapshot_path.c_str(),
                    load_watch.ElapsedSeconds() * 1e3);
      }
    } else {
      restored = core::EmbLookup::LoadFromKg(graph, options, model_path);
    }
    if (!restored.ok()) {
      std::fprintf(stderr, "cannot load model: %s\n",
                   restored.status().ToString().c_str());
      return 1;
    }
    serve::ServerOptions server_options;
    server_options.max_batch = FlagInt(flags, "batch", 32);
    server_options.max_delay =
        std::chrono::microseconds(FlagInt(flags, "delay-us", 1000));
    server_options.enable_cache = FlagInt(flags, "cache", 1) != 0;
    server_options.max_queue_depth =
        static_cast<size_t>(FlagInt(flags, "depth", 4096));
    server_options.obs.trace_sample_rate =
        FlagDouble(flags, "trace-sample", 0.0);
    server_options.obs.slow_query_us = FlagDouble(flags, "slow-us", 0.0);
    server_options.obs.slow_log_path = FlagStr(flags, "slow-log");
    const int clients = static_cast<int>(FlagInt(flags, "clients", 4));
    const int64_t requests = FlagInt(flags, "requests", 2000);
    const int64_t k = FlagInt(flags, "k", 10);
    const int64_t swaps = FlagInt(flags, "swaps", 0);

    // Declared before the server so the borrowed updater outlives it.
    std::unique_ptr<update::IndexUpdater> updater;
    const std::string wal_path = FlagStr(flags, "wal");
    if (!wal_path.empty()) {
      update::UpdaterOptions up_options;
      up_options.wal_path = wal_path;
      up_options.background_compaction = true;
      auto opened = update::IndexUpdater::Open(restored.value().get(), &graph,
                                               up_options);
      if (!opened.ok()) {
        std::fprintf(stderr, "cannot open updater: %s\n",
                     opened.status().ToString().c_str());
        return 1;
      }
      updater = std::move(opened).value();
    }

    serve::LookupServer server(restored.value().get(), server_options);
    if (updater != nullptr) {
      server.AttachUpdater(updater.get());
      std::printf("online updates enabled (wal %s, background compaction)\n",
                  wal_path.c_str());
    }
    // Declared after the server: the endpoint (and its renderer referencing
    // the server) stops before the server destructs.
    obs::MetricsHttpServer metrics_http;
    const int64_t metrics_port = FlagInt(flags, "metrics-port", -1);
    if (metrics_port >= 0) {
      const Status status = metrics_http.Start(
          static_cast<int>(metrics_port),
          [&server, &updater] {
            return serve::PrometheusText(server, updater.get());
          });
      if (!status.ok()) {
        std::fprintf(stderr, "metrics endpoint failed: %s\n",
                     status.ToString().c_str());
        return 1;
      }
      std::printf("metrics endpoint on http://127.0.0.1:%d/metrics\n",
                  metrics_http.port());
      // Scrapers read this line to find the port while the load is still
      // running; don't leave it in the stdio block buffer until exit.
      std::fflush(stdout);
    }
    if (server_options.obs.slow_query_us > 0) {
      std::printf("slow-query log: requests > %.0fus -> %s\n",
                  server_options.obs.slow_query_us,
                  server_options.obs.slow_log_path.empty()
                      ? "stderr"
                      : server_options.obs.slow_log_path.c_str());
    }
    std::printf("serving %lld requests from %d closed-loop clients "
                "(batch<=%lld, delay %lldus, cache %s)\n",
                static_cast<long long>(requests), clients,
                static_cast<long long>(server_options.max_batch),
                static_cast<long long>(FlagInt(flags, "delay-us", 1000)),
                server_options.enable_cache ? "on" : "off");
    Stopwatch wall;
    std::thread swapper;
    if (swaps > 0) {
      swapper = std::thread([&] {
        for (int64_t s = 0; s < swaps; ++s) {
          core::IndexConfig config;
          config.compress = false;
          config.kind = s % 2 == 0 ? core::IndexKind::kIvfFlat
                                   : core::IndexKind::kFlat;
          const Status status = server.SwapIndex(config);
          std::printf("swap %lld (%s): %s\n", static_cast<long long>(s),
                      s % 2 == 0 ? "ivf-flat" : "flat",
                      status.ToString().c_str());
        }
      });
    }
    const uint64_t failures = RunLoad(&server, graph, clients, requests, k);
    if (swapper.joinable()) swapper.join();
    const double seconds = wall.ElapsedSeconds();
    std::printf("\n%.0f qps (%lld requests in %.2fs), %llu failures\n\n",
                requests / seconds, static_cast<long long>(requests),
                seconds, static_cast<unsigned long long>(failures));
    std::printf("%s", server.StatsText().c_str());
    const serve::LookupServer::ObsStats obs_stats = server.GetObsStats();
    if (obs_stats.traces_sampled > 0) {
      std::printf("traces_sampled           %llu\n"
                  "slow_queries_logged      %llu\n"
                  "trace_spans_dropped      %llu\n",
                  static_cast<unsigned long long>(obs_stats.traces_sampled),
                  static_cast<unsigned long long>(
                      obs_stats.slow_queries_logged),
                  static_cast<unsigned long long>(obs_stats.spans_dropped));
    }
    return failures == 0 ? 0 : 1;
  }

  // metrics-dump: spin up a server, drive a short self-generated load so
  // every histogram has observations, and print the full Prometheus text
  // exposition. CI greps this output for the documented metric families.
  if (command == "metrics-dump") {
    auto restored = core::EmbLookup::LoadFromKg(graph, options, model_path);
    if (!restored.ok()) {
      std::fprintf(stderr, "cannot load model: %s\n",
                   restored.status().ToString().c_str());
      return 1;
    }
    serve::ServerOptions server_options;
    // Trace every request: the dump should show live span histograms and
    // nonzero trace counters.
    server_options.obs.trace_sample_rate = 1.0;
    std::unique_ptr<update::IndexUpdater> updater;
    const std::string wal_path = FlagStr(flags, "wal");
    if (!wal_path.empty()) {
      update::UpdaterOptions up_options;
      up_options.wal_path = wal_path;
      auto opened = update::IndexUpdater::Open(restored.value().get(), &graph,
                                               up_options);
      if (!opened.ok()) {
        std::fprintf(stderr, "cannot open updater: %s\n",
                     opened.status().ToString().c_str());
        return 1;
      }
      updater = std::move(opened).value();
    }
    serve::LookupServer server(restored.value().get(), server_options);
    if (updater != nullptr) server.AttachUpdater(updater.get());
    const int64_t requests = FlagInt(flags, "requests", 200);
    const uint64_t failures = RunLoad(&server, graph, /*clients=*/2, requests,
                                      FlagInt(flags, "k", 10));
    if (updater != nullptr) {
      // Touch the update path so its gauges reflect a real mutation.
      auto added = server.AddEntity("metrics dump probe", "", {});
      if (!added.ok()) {
        std::fprintf(stderr, "probe mutation failed: %s\n",
                     added.status().ToString().c_str());
        return 1;
      }
    }
    std::fputs(serve::PrometheusText(server, updater.get()).c_str(), stdout);
    return failures == 0 ? 0 : 1;
  }

  if (command == "add-entity" || command == "remove-entity" ||
      command == "compact") {
    const std::string wal_path = FlagStr(flags, "wal");
    if (wal_path.empty()) return Usage();
    auto restored = core::EmbLookup::LoadFromKg(graph, options, model_path);
    if (!restored.ok()) {
      std::fprintf(stderr, "cannot load model: %s\n",
                   restored.status().ToString().c_str());
      return 1;
    }
    core::EmbLookup* el = restored.value().get();
    update::UpdaterOptions up_options;
    up_options.wal_path = wal_path;
    auto opened = update::IndexUpdater::Open(el, &graph, up_options);
    if (!opened.ok()) {
      std::fprintf(stderr, "cannot open updater: %s\n",
                   opened.status().ToString().c_str());
      return 1;
    }
    update::IndexUpdater* updater = opened.value().get();

    if (command == "add-entity") {
      const std::string label = FlagStr(flags, "label");
      if (label.empty()) return Usage();
      auto added = updater->AddEntity(label, FlagStr(flags, "qid"),
                                      SplitAliases(FlagStr(flags, "aliases")));
      if (!added.ok()) {
        std::fprintf(stderr, "add failed: %s\n",
                     added.status().ToString().c_str());
        return 1;
      }
      std::printf("added entity %lld ('%s'); WAL %s now holds seq %llu\n",
                  static_cast<long long>(added.value()), label.c_str(),
                  wal_path.c_str(),
                  static_cast<unsigned long long>(updater->stats().last_seq));
      PrintResults(graph, el->Lookup(label, FlagInt(flags, "k", 5)));
      return 0;
    }

    if (command == "remove-entity") {
      const kg::EntityId id = FlagInt(flags, "id", -1);
      const Status status = updater->RemoveEntity(id);
      if (!status.ok()) {
        std::fprintf(stderr, "remove failed: %s\n",
                     status.ToString().c_str());
        return 1;
      }
      std::printf("removed entity %lld; WAL %s now holds seq %llu\n",
                  static_cast<long long>(id), wal_path.c_str(),
                  static_cast<unsigned long long>(updater->stats().last_seq));
      return 0;
    }

    // compact
    const std::string snap_out = FlagStr(flags, "snapshot-out");
    const std::string kg_out = FlagStr(flags, "kg-out");
    const update::UpdaterStats before = updater->stats();
    Stopwatch compact_watch;
    Status status;
    if (!snap_out.empty() && !kg_out.empty()) {
      status = updater->Persist(snap_out, kg_out);
    } else if (snap_out.empty() != kg_out.empty()) {
      return Usage();  // Persist needs both outputs.
    } else {
      status = updater->Compact();
    }
    if (!status.ok()) {
      std::fprintf(stderr, "compact failed: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("compacted %lld delta rows / %lld tombstones into the main "
                "index in %.1fms%s\n",
                static_cast<long long>(before.delta_rows),
                static_cast<long long>(before.tombstones),
                compact_watch.ElapsedSeconds() * 1e3,
                snap_out.empty()
                    ? " (in-memory only; pass --snapshot-out/--kg-out to"
                      " persist)"
                    : "; state persisted, WAL shrunk to tombstone registry");
    return 0;
  }

  if (command == "lookup" || command == "repl") {
    auto restored = core::EmbLookup::LoadFromKg(graph, options, model_path);
    if (!restored.ok()) {
      std::fprintf(stderr, "cannot load model: %s\n",
                   restored.status().ToString().c_str());
      return 1;
    }
    const int64_t k = FlagInt(flags, "k", 10);
    if (command == "lookup") {
      const std::string query = FlagStr(flags, "query");
      if (query.empty()) return Usage();
      PrintResults(graph, restored.value()->Lookup(query, k));
      return 0;
    }
    std::printf("EmbLookup REPL — type a query, empty line to exit.\n");
    std::string line;
    while (std::printf("> "), std::fflush(stdout),
           std::getline(std::cin, line)) {
      if (line.empty()) break;
      PrintResults(graph, restored.value()->Lookup(line, k));
    }
    return 0;
  }
  return Usage();
}
