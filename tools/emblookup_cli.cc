// Command-line front end for the EmbLookup library. Subcommands:
//
//   emblookup_cli generate-kg --entities 5000 --seed 42 --out kg.tsv
//   emblookup_cli train       --kg kg.tsv --model model.bin
//                             [--epochs 16] [--triplets 24]
//   emblookup_cli lookup      --kg kg.tsv --model model.bin
//                             --query "Germeny" [-k 10]
//   emblookup_cli repl        --kg kg.tsv --model model.bin
//
// The KG format is the TSV produced by KnowledgeGraph::SaveTsv. Training
// writes only the encoder weights; `lookup`/`repl` rebuild the entity
// index on startup (deterministic given the KG + options).

#include <cstdio>
#include <cstring>
#include <iostream>
#include <map>
#include <string>

#include "core/emblookup.h"
#include "kg/synthetic_kg.h"

using namespace emblookup;

namespace {

/// Minimal --flag value parser; flags may appear in any order.
std::map<std::string, std::string> ParseFlags(int argc, char** argv,
                                              int start) {
  std::map<std::string, std::string> flags;
  for (int i = start; i + 1 < argc; i += 2) {
    std::string key = argv[i];
    if (key.rfind("--", 0) == 0) key = key.substr(2);
    if (key.rfind('-', 0) == 0) key = key.substr(1);
    flags[key] = argv[i + 1];
  }
  return flags;
}

int64_t FlagInt(const std::map<std::string, std::string>& flags,
                const std::string& key, int64_t fallback) {
  auto it = flags.find(key);
  return it == flags.end() ? fallback : std::stoll(it->second);
}

std::string FlagStr(const std::map<std::string, std::string>& flags,
                    const std::string& key, const std::string& fallback = "") {
  auto it = flags.find(key);
  return it == flags.end() ? fallback : it->second;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  emblookup_cli generate-kg --entities N [--seed S] --out kg.tsv\n"
      "  emblookup_cli train  --kg kg.tsv --model model.bin [--epochs E]"
      " [--triplets T]\n"
      "  emblookup_cli lookup --kg kg.tsv --model model.bin --query Q"
      " [--k K]\n"
      "  emblookup_cli repl   --kg kg.tsv --model model.bin\n");
  return 2;
}

core::EmbLookupOptions MakeOptions(
    const std::map<std::string, std::string>& flags) {
  core::EmbLookupOptions options;
  options.trainer.epochs = static_cast<int>(FlagInt(flags, "epochs", 16));
  options.miner.triplets_per_entity =
      static_cast<int>(FlagInt(flags, "triplets", 24));
  options.trainer.log_every = 2;
  return options;
}

void PrintResults(const kg::KnowledgeGraph& graph,
                  const std::vector<core::LookupResult>& results) {
  for (const core::LookupResult& r : results) {
    const kg::Entity& e = graph.entity(r.entity);
    std::printf("  %-10s %-36s dist=%.4f\n", e.qid.c_str(), e.label.c_str(),
                r.dist);
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  const auto flags = ParseFlags(argc, argv, 2);

  if (command == "generate-kg") {
    const std::string out = FlagStr(flags, "out");
    if (out.empty()) return Usage();
    kg::SyntheticKgOptions options;
    options.num_entities = FlagInt(flags, "entities", 5000);
    options.seed = static_cast<uint64_t>(FlagInt(flags, "seed", 42));
    const kg::KnowledgeGraph graph = kg::GenerateSyntheticKg(options);
    const Status status = graph.SaveTsv(out);
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("wrote %lld entities, %lld facts to %s\n",
                static_cast<long long>(graph.num_entities()),
                static_cast<long long>(graph.num_facts()), out.c_str());
    return 0;
  }

  // Remaining commands need a KG.
  const std::string kg_path = FlagStr(flags, "kg");
  const std::string model_path = FlagStr(flags, "model");
  if (kg_path.empty() || model_path.empty()) return Usage();
  auto loaded = kg::KnowledgeGraph::LoadTsv(kg_path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "cannot load KG: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  const kg::KnowledgeGraph graph = std::move(loaded).value();
  const core::EmbLookupOptions options = MakeOptions(flags);

  if (command == "train") {
    auto built = core::EmbLookup::TrainFromKg(graph, options);
    if (!built.ok()) {
      std::fprintf(stderr, "training failed: %s\n",
                   built.status().ToString().c_str());
      return 1;
    }
    const Status status = built.value()->SaveModel(model_path);
    if (!status.ok()) {
      std::fprintf(stderr, "save failed: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("trained in %.1fs (loss %.4f); weights -> %s\n",
                built.value()->train_stats().wall_seconds,
                built.value()->train_stats().final_loss, model_path.c_str());
    return 0;
  }

  if (command == "lookup" || command == "repl") {
    auto restored = core::EmbLookup::LoadFromKg(graph, options, model_path);
    if (!restored.ok()) {
      std::fprintf(stderr, "cannot load model: %s\n",
                   restored.status().ToString().c_str());
      return 1;
    }
    const int64_t k = FlagInt(flags, "k", 10);
    if (command == "lookup") {
      const std::string query = FlagStr(flags, "query");
      if (query.empty()) return Usage();
      PrintResults(graph, restored.value()->Lookup(query, k));
      return 0;
    }
    std::printf("EmbLookup REPL — type a query, empty line to exit.\n");
    std::string line;
    while (std::printf("> "), std::fflush(stdout),
           std::getline(std::cin, line)) {
      if (line.empty()) break;
      PrintResults(graph, restored.value()->Lookup(line, k));
    }
    return 0;
  }
  return Usage();
}
