#!/usr/bin/env bash
# Docs gate: every CLI subcommand implemented in tools/emblookup_cli.cc
# must be mentioned in README.md, so a new subcommand cannot land without
# user-facing documentation. Subcommands are recognised from the dispatch
# pattern `command == "<name>"`; a README "mention" is the literal
# subcommand name anywhere in the file (prose, code block, or table).
#
# Usage: tools/check_docs.sh    (run from anywhere inside the repo)
set -euo pipefail
cd "$(dirname "$0")/.."

CLI_SRC=tools/emblookup_cli.cc
README=README.md

mapfile -t subcommands < <(
  grep -o 'command == "[a-z-]*"' "$CLI_SRC" \
    | sed 's/command == "\([a-z-]*\)"/\1/' \
    | sort -u
)

if [ "${#subcommands[@]}" -eq 0 ]; then
  echo "FAIL: no subcommands found in $CLI_SRC (dispatch pattern changed?)"
  exit 1
fi

missing=0
for cmd in "${subcommands[@]}"; do
  if ! grep -q -- "$cmd" "$README"; then
    echo "FAIL: CLI subcommand '$cmd' is not mentioned in $README"
    missing=1
  fi
done

if [ "$missing" -ne 0 ]; then
  exit 1
fi
echo "docs OK: ${#subcommands[@]} CLI subcommands all mentioned in $README"
