#!/usr/bin/env bash
# Docs gates:
#  1. Every CLI subcommand implemented in tools/emblookup_cli.cc must be
#     mentioned in README.md, so a new subcommand cannot land without
#     user-facing documentation. Subcommands are recognised from the
#     dispatch pattern `command == "<name>"`; a README "mention" is the
#     literal subcommand name anywhere in the file (prose, code block,
#     or table).
#  2. DESIGN.md `## N. Title` section numbers must be sequential from 1.
#     Cross-references ("see §6", "DESIGN.md §13") are written against
#     these numbers and have drifted before when sections were inserted.
#
# Usage: tools/check_docs.sh    (run from anywhere inside the repo)
set -euo pipefail
cd "$(dirname "$0")/.."

CLI_SRC=tools/emblookup_cli.cc
README=README.md

mapfile -t subcommands < <(
  grep -o 'command == "[a-z-]*"' "$CLI_SRC" \
    | sed 's/command == "\([a-z-]*\)"/\1/' \
    | sort -u
)

if [ "${#subcommands[@]}" -eq 0 ]; then
  echo "FAIL: no subcommands found in $CLI_SRC (dispatch pattern changed?)"
  exit 1
fi

missing=0
for cmd in "${subcommands[@]}"; do
  if ! grep -q -- "$cmd" "$README"; then
    echo "FAIL: CLI subcommand '$cmd' is not mentioned in $README"
    missing=1
  fi
done

if [ "$missing" -ne 0 ]; then
  exit 1
fi
echo "docs OK: ${#subcommands[@]} CLI subcommands all mentioned in $README"

DESIGN=DESIGN.md
mapfile -t sections < <(sed -n 's/^## \([0-9][0-9]*\)\..*/\1/p' "$DESIGN")

if [ "${#sections[@]}" -eq 0 ]; then
  echo "FAIL: no numbered '## N. Title' sections found in $DESIGN"
  exit 1
fi

expected=1
for num in "${sections[@]}"; do
  if [ "$num" -ne "$expected" ]; then
    echo "FAIL: $DESIGN section numbering drifted: found '## $num.' where" \
         "'## $expected.' was expected (renumber the headers AND fix any" \
         "'§' cross-references)"
    exit 1
  fi
  expected=$((expected + 1))
done
echo "docs OK: $DESIGN sections 1..$((expected - 1)) are sequential"
